//! The replay driver: render a finished corpus's event history as the
//! stream of daily transaction dumps that *would have produced it*.
//!
//! The synthetic corridor generator emits an omniscient corpus — every
//! license carries its full lifecycle, including cancellation dates that
//! lie years in its future. A real scraper never sees that: on the grant
//! day a license appears *without* its eventual cancellation, which
//! arrives years later as its own transaction. [`render_history`]
//! reproduces exactly that information flow:
//!
//! * a `New` transaction on the grant date, with the cancellation date
//!   **stripped** (termination dates are part of the grant and kept);
//! * a `Cancel` transaction on the cancellation date.
//!
//! Reconstruction-as-of-`D` only consults events `≤ D`, so a corpus
//! built by replaying dumps through date `D` answers every as-of-`D`
//! query byte-identically to the omniscient corpus — the property the
//! `hftnetview ingest` checkpoints assert.
//!
//! Dump files are named `uls_tx_YYYYMMDD.txt` (lexicographic order =
//! chronological order) and written via a temp-file + rename, so a
//! [`crate::follow::DumpFollower`] polling the directory never observes
//! a half-written dump.

use crate::delta::{encode_batch, DumpBatch, DumpEvent};
use hft_time::Date;
use hft_uls::License;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Render the corpus's lifecycle events as one batch per event day,
/// in chronological order.
///
/// Within a day, `New` transactions come first (ascending license id),
/// then `Cancel` transactions (ascending call sign) — a deterministic
/// order so replay output is reproducible byte-for-byte.
pub fn render_history(licenses: &[License]) -> Vec<DumpBatch> {
    let mut news: BTreeMap<Date, Vec<&License>> = BTreeMap::new();
    let mut cancels: BTreeMap<Date, Vec<&License>> = BTreeMap::new();
    for lic in licenses {
        news.entry(lic.grant_date).or_default().push(lic);
        if let Some(c) = lic.cancellation_date {
            cancels.entry(c).or_default().push(lic);
        }
    }
    let mut dates: Vec<Date> = news.keys().chain(cancels.keys()).copied().collect();
    dates.sort_unstable();
    dates.dedup();
    dates
        .into_iter()
        .map(|date| {
            let mut events = Vec::new();
            if let Some(granted) = news.get(&date) {
                let mut granted = granted.clone();
                granted.sort_unstable_by_key(|l| l.id);
                for lic in granted {
                    // The scraper-eye view: no future knowledge.
                    let mut as_granted = lic.clone();
                    as_granted.cancellation_date = None;
                    events.push(DumpEvent::New(as_granted));
                }
            }
            if let Some(gone) = cancels.get(&date) {
                let mut gone = gone.clone();
                gone.sort_unstable_by_key(|l| &l.call_sign);
                for lic in gone {
                    events.push(DumpEvent::Cancel {
                        call_sign: lic.call_sign.clone(),
                        date,
                    });
                }
            }
            DumpBatch { date, events }
        })
        .collect()
}

/// The dump file name for a batch date: `uls_tx_YYYYMMDD.txt`.
pub fn dump_file_name(date: Date) -> String {
    format!("uls_tx_{}.txt", date.to_compact())
}

/// The batch date encoded in a dump file name, if it is one of ours.
pub fn dump_file_date(path: &Path) -> Option<Date> {
    let name = path.file_name()?.to_str()?;
    let compact = name.strip_prefix("uls_tx_")?.strip_suffix(".txt")?;
    Date::parse_compact(compact).ok()
}

/// Write one batch into `dir` (temp file + rename, so concurrent
/// followers never see a partial dump). Returns the final path.
pub fn write_dump(dir: &Path, batch: &DumpBatch) -> io::Result<PathBuf> {
    let final_path = dir.join(dump_file_name(batch.date));
    let tmp_path = dir.join(format!("{}.tmp", dump_file_name(batch.date)));
    fs::write(&tmp_path, encode_batch(batch))?;
    fs::rename(&tmp_path, &final_path)?;
    Ok(final_path)
}

/// Write a whole history into `dir` (created if missing), one file per
/// batch. Returns the paths in chronological order.
pub fn write_dump_dir(dir: &Path, batches: &[DumpBatch]) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    batches.iter().map(|b| write_dump(dir, b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::Applier;
    use crate::delta::decode_batch;
    use hft_geodesy::LatLon;
    use hft_uls::{
        CallSign, FrequencyAssignment, LicenseId, MicrowavePath, RadioService, StationClass,
        TowerSite, UlsDatabase,
    };

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::new(y, m, day).unwrap()
    }

    fn lic(id: u64, grant: Date, cancel: Option<Date>) -> License {
        let tx = TowerSite::at(LatLon::new(41.0 + id as f64 * 0.1, -88.17).unwrap());
        let rx = TowerSite::at(LatLon::new(41.2 + id as f64 * 0.1, -87.67).unwrap());
        License {
            id: LicenseId(id),
            call_sign: CallSign(format!("WQ{id:05}")),
            licensee: format!("Net {}", id % 3),
            service: RadioService::MG,
            station_class: StationClass::FXO,
            grant_date: grant,
            termination_date: None,
            cancellation_date: cancel,
            paths: vec![MicrowavePath {
                tx,
                rx,
                frequencies: vec![FrequencyAssignment { center_hz: 6.1e9 }],
            }],
        }
    }

    #[test]
    fn history_hides_future_cancellations() {
        let corpus = vec![
            lic(1, d(2013, 5, 1), Some(d(2018, 2, 1))),
            lic(2, d(2013, 5, 1), None),
            lic(3, d(2015, 9, 9), Some(d(2018, 2, 1))),
        ];
        let batches = render_history(&corpus);
        assert_eq!(batches.len(), 3, "two grant days + one shared cancel day");
        assert_eq!(batches[0].date, d(2013, 5, 1));
        assert_eq!(batches[0].events.len(), 2);
        for e in &batches[0].events {
            match e {
                DumpEvent::New(l) => assert_eq!(l.cancellation_date, None),
                other => panic!("grant day must be all News, got {other:?}"),
            }
        }
        assert_eq!(batches[2].date, d(2018, 2, 1));
        assert_eq!(batches[2].events.len(), 2);
        assert!(batches[2]
            .events
            .iter()
            .all(|e| matches!(e, DumpEvent::Cancel { .. })));
    }

    #[test]
    fn replaying_history_reproduces_the_corpus() {
        let corpus = vec![
            lic(1, d(2013, 5, 1), Some(d(2018, 2, 1))),
            lic(2, d(2013, 5, 1), None),
            lic(3, d(2015, 9, 9), Some(d(2019, 12, 31))),
        ];
        let mut ap = Applier::new(UlsDatabase::new());
        for batch in render_history(&corpus) {
            assert!(ap.apply(&batch).is_empty());
        }
        ap.verify().unwrap();
        // Same license set (replay orders by grant date, so sort by id).
        let mut got = ap.db().licenses().to_vec();
        got.sort_unstable_by_key(|l| l.id);
        assert_eq!(got, corpus, "full replay reproduces every lifecycle");
    }

    #[test]
    fn dump_dir_round_trip() {
        let corpus = vec![
            lic(1, d(2013, 5, 1), Some(d(2018, 2, 1))),
            lic(2, d(2014, 7, 2), None),
        ];
        let batches = render_history(&corpus);
        let dir = std::env::temp_dir().join(format!("hft_ingest_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let paths = write_dump_dir(&dir, &batches).unwrap();
        assert_eq!(paths.len(), batches.len());
        // Names sort chronologically and parse back to their dates.
        let mut names: Vec<String> = paths
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        names.reverse();
        for (path, batch) in paths.iter().zip(&batches) {
            assert_eq!(dump_file_date(path), Some(batch.date));
            let (back, report) = decode_batch(&fs::read_to_string(path).unwrap()).unwrap();
            assert!(report.is_clean());
            assert_eq!(back.date, batch.date);
            assert_eq!(back.events.len(), batch.events.len());
        }
        assert_eq!(dump_file_date(Path::new("whatever.txt")), None);
        fs::remove_dir_all(&dir).unwrap();
    }
}
