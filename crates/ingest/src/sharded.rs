//! Per-shard snapshot publication for the serving fleet.
//!
//! A [`ShardedStore`] owns one [`SnapshotStore`] per fleet shard and
//! republishes the full corpus through the partitioner on every
//! publish, so shard *k*'s generation *g* always holds exactly the
//! shard-*k* piece of the full corpus at generation *g*:
//!
//! * all shards are seeded at generation 0 from one partition of the
//!   seed corpus, and
//! * [`ShardedStore::publish_full`] advances every shard exactly once,
//!   in shard order, so generations stay in lockstep.
//!
//! The lockstep invariant is what makes a *generation vector* (one
//! number per shard) meaningful: a uniform vector `[g, g, …]` names one
//! coherent full-corpus state, and the concurrent-ingest fleet bench
//! brackets each scatter-gathered answer between two vector reads to
//! decide which full corpus to verify the bytes against.

use crate::store::SnapshotStore;
use hft_time::Date;
use hft_uls::shard::{partition, ShardStrategy};
use hft_uls::UlsDatabase;
use std::sync::Arc;

/// A fleet of per-shard snapshot stores publishing in lockstep.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Arc<SnapshotStore>>,
    strategy: ShardStrategy,
}

impl ShardedStore {
    /// Partition `db` into `shards` pieces under `strategy` and seed
    /// one store per shard at generation 0.
    ///
    /// # Panics
    /// Panics when `shards` is zero.
    pub fn seeded(
        db: &UlsDatabase,
        shards: usize,
        strategy: ShardStrategy,
        as_of: Option<Date>,
    ) -> ShardedStore {
        let parts = partition(db, shards, strategy);
        ShardedStore {
            shards: parts
                .shards
                .into_iter()
                .enumerate()
                .map(|(k, sdb)| {
                    Arc::new(SnapshotStore::seeded_shard(Arc::new(sdb), as_of, k as u32))
                })
                .collect(),
            strategy,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partitioning strategy.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// The per-shard stores, in shard order.
    pub fn shards(&self) -> &[Arc<SnapshotStore>] {
        &self.shards
    }

    /// One shard's store.
    pub fn shard(&self, k: usize) -> &Arc<SnapshotStore> {
        &self.shards[k]
    }

    /// Every shard's current generation, in shard order. Uniform except
    /// momentarily inside [`ShardedStore::publish_full`].
    pub fn generation_vector(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.generation()).collect()
    }

    /// Partition the full corpus `db` and publish each piece to its
    /// shard, in shard order. Returns the new (common) generation.
    ///
    /// Readers between the first and last per-shard publish can observe
    /// a mixed generation vector; they detect it by reading
    /// [`ShardedStore::generation_vector`] around their query, exactly
    /// as single-store readers bracket with
    /// [`SnapshotStore::generation`].
    pub fn publish_full(&self, db: &UlsDatabase, as_of: Option<Date>) -> u64 {
        let parts = partition(db, self.shards.len(), self.strategy);
        let mut generation = 0;
        for (store, sdb) in self.shards.iter().zip(parts.shards) {
            generation = store.publish(Arc::new(sdb), as_of);
        }
        generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hft_geodesy::LatLon;
    use hft_uls::{
        CallSign, FrequencyAssignment, License, LicenseId, MicrowavePath, RadioService,
        StationClass, TowerSite, UlsPortal,
    };

    fn lic(id: u64, name: &str, lat: f64) -> License {
        License {
            id: LicenseId(id),
            call_sign: CallSign(format!("WQ{id:05}")),
            licensee: name.into(),
            service: RadioService::MG,
            station_class: StationClass::FXO,
            grant_date: Date::new(2015, 1, 1).unwrap(),
            termination_date: None,
            cancellation_date: None,
            paths: vec![MicrowavePath {
                tx: TowerSite::at(LatLon::new(lat, -88.0).unwrap()),
                rx: TowerSite::at(LatLon::new(lat + 0.2, -87.6).unwrap()),
                frequencies: vec![FrequencyAssignment { center_hz: 6.1e9 }],
            }],
        }
    }

    #[test]
    fn seeds_in_lockstep_and_publishes_advance_together() {
        let seed = UlsDatabase::from_licenses(vec![
            lic(1, "Alpha Networks", 41.0),
            lic(2, "Beta Microwave", 41.5),
        ]);
        let fleet = ShardedStore::seeded(&seed, 4, ShardStrategy::LicenseeHash, None);
        assert_eq!(fleet.shard_count(), 4);
        assert_eq!(fleet.generation_vector(), vec![0, 0, 0, 0]);
        let seeded: usize = fleet.shards().iter().map(|s| s.current().db().len()).sum();
        assert_eq!(seeded, 2);

        let next = UlsDatabase::from_licenses(vec![
            lic(1, "Alpha Networks", 41.0),
            lic(2, "Beta Microwave", 41.5),
            lic(3, "Gamma Wireless", 42.0),
        ]);
        let d = Date::new(2016, 3, 4).unwrap();
        assert_eq!(fleet.publish_full(&next, Some(d)), 1);
        assert_eq!(fleet.generation_vector(), vec![1, 1, 1, 1]);
        let total: usize = fleet.shards().iter().map(|s| s.current().db().len()).sum();
        assert_eq!(total, 3);
        for store in fleet.shards() {
            assert_eq!(store.current().as_of(), Some(d));
        }
    }

    #[test]
    fn shard_pieces_are_the_partition() {
        let seed = UlsDatabase::from_licenses(vec![
            lic(1, "Alpha Networks", 41.0),
            lic(2, "Beta Microwave", 41.5),
            lic(3, "Gamma Wireless", 42.0),
        ]);
        let fleet = ShardedStore::seeded(&seed, 3, ShardStrategy::SpatialCell, None);
        // Each license is on exactly one shard, and shard stores carry
        // their shard number for telemetry labeling.
        for l in seed.licenses() {
            let holders = fleet
                .shards()
                .iter()
                .filter(|s| s.current().db().license_detail(l.id).is_some())
                .count();
            assert_eq!(holders, 1);
        }
        for (k, store) in fleet.shards().iter().enumerate() {
            assert_eq!(store.shard(), Some(k as u32));
        }
    }
}
