//! # hft-ingest
//!
//! Incremental daily-dump ingestion for the ULS corpus — the subsystem
//! that turns the frozen load-at-startup reproduction into a live
//! service. Real FCC ULS data arrives as weekly full dumps plus *daily
//! transaction dumps*; the paper's longitudinal story (§6, Figs 1–2) is
//! exactly a corpus mutating over 2013–2020. This crate provides the
//! four pieces that model that pipeline:
//!
//! * [`delta`] — a transaction-dump codec extending the
//!   [`hft_uls::flatfile`] dialect: dated batches of `TX`-framed
//!   `HD`/`EN`/`LO`/`PA`/`FR` record groups with new/update/cancel
//!   semantics keyed by call sign. Malformed transactions are
//!   *quarantined* (counted and skipped, never aborting the batch) —
//!   the robustness posture of a production scraper.
//! * [`apply`] — an [`apply::Applier`] that folds decoded batches into a
//!   [`hft_uls::UlsDatabase`] **in place**, maintaining every secondary
//!   index (site bucket grid, `(service, class)` index, sorted
//!   licensee-name cache) incrementally, plus a from-scratch rebuild
//!   path used only to verify the incremental state.
//! * [`store`] — a copy-on-write [`store::SnapshotStore`]: corpus
//!   generations published as `Arc` swaps, so every in-flight analysis
//!   finishes against the generation it started on while new queries
//!   see the new corpus.
//! * [`replay`] and [`follow`] — a driver that renders a corpus's
//!   2013–2020 event history as a directory of daily dumps, and a
//!   follower that tails such a directory.
//!
//! [`model`] holds the deliberately-naive reference interpreter the
//! verification paths replay events through.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apply;
pub mod delta;
pub mod follow;
pub mod model;
pub mod replay;
pub mod sharded;
pub mod store;

pub use apply::{Applier, ApplyStats, Conflict, ConflictKind};
pub use delta::{
    decode_batch, encode_batch, BatchError, DecodeReport, DumpBatch, DumpEvent, QuarantineReason,
    Quarantined,
};
pub use follow::DumpFollower;
pub use replay::{render_history, write_dump, write_dump_dir};
pub use sharded::ShardedStore;
pub use store::{CorpusSnapshot, SnapshotStore};
