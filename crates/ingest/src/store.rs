//! Copy-on-write corpus snapshot generations.
//!
//! The live query service must never block readers while the corpus
//! changes underneath them — the lock-free-reader discipline of the HFT
//! pattern catalog. The [`SnapshotStore`] holds the *current*
//! [`CorpusSnapshot`] behind an `Arc` that is **swapped atomically** at
//! publish time: acquiring the current snapshot is an `Arc` clone under
//! a mutex held only for that pointer copy (never during corpus builds
//! or queries), so
//!
//! * every in-flight query keeps the `Arc` it started with and finishes
//!   against a fully consistent corpus generation, and
//! * the ingest applier's next `Arc::make_mut` sees outstanding readers
//!   and copies instead of mutating under them — copy-on-write with the
//!   copy paid only when someone is actually still reading.
//!
//! Generations are strictly monotonic. [`SnapshotStore::generation`] is
//! a plain atomic load, cheap enough to read before and after every
//! query — which is exactly how the concurrent-ingest bench brackets a
//! response to the generation that served it.

use hft_time::Date;
use hft_uls::UlsDatabase;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One published corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusSnapshot {
    generation: u64,
    as_of: Option<Date>,
    db: Arc<UlsDatabase>,
}

impl CorpusSnapshot {
    /// The generation number (0 is the seed corpus).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The dump date this generation incorporates, when known (`None`
    /// for a seed corpus that predates any dump).
    pub fn as_of(&self) -> Option<Date> {
        self.as_of
    }

    /// The corpus.
    pub fn db(&self) -> &UlsDatabase {
        &self.db
    }

    /// The corpus as a shared handle — for consumers (like a per-
    /// generation `AnalysisSession`) that must co-own their generation.
    pub fn db_arc(&self) -> Arc<UlsDatabase> {
        Arc::clone(&self.db)
    }
}

/// The generation store: publishes corpus snapshots, hands out the
/// current one, and exposes the generation counter.
#[derive(Debug)]
pub struct SnapshotStore {
    current: Mutex<Arc<CorpusSnapshot>>,
    /// Mirrors `current`'s generation; a plain load, so hot paths can
    /// detect staleness without touching the mutex.
    generation: AtomicU64,
    /// When the current generation was published — feeds the snapshot
    /// staleness gauge exposed by the serve layer.
    published_at: Mutex<Instant>,
    /// Which fleet shard this store publishes for, if any. Only affects
    /// telemetry: a sharded store reports into `shard`-labeled registry
    /// series so per-shard publish cadence is observable.
    shard: Option<u32>,
    /// Registry handles, resolved once at construction (labeled by
    /// shard when one is set).
    generation_gauge: Arc<hft_obs::Gauge>,
    swap_ns: Arc<hft_obs::Histogram>,
}

impl SnapshotStore {
    /// A store seeded with generation 0.
    pub fn new(db: UlsDatabase) -> SnapshotStore {
        SnapshotStore::seeded(Arc::new(db), None)
    }

    /// A store seeded with generation 0 from a shared corpus, stamped
    /// `as_of` when the seed already incorporates dumps.
    pub fn seeded(db: Arc<UlsDatabase>, as_of: Option<Date>) -> SnapshotStore {
        SnapshotStore::build(db, as_of, None)
    }

    /// A store publishing one fleet shard's corpus: identical semantics
    /// to [`SnapshotStore::seeded`], but its registry series carry a
    /// `shard` label.
    pub fn seeded_shard(db: Arc<UlsDatabase>, as_of: Option<Date>, shard: u32) -> SnapshotStore {
        SnapshotStore::build(db, as_of, Some(shard))
    }

    fn build(db: Arc<UlsDatabase>, as_of: Option<Date>, shard: Option<u32>) -> SnapshotStore {
        let registry = hft_obs::global();
        let name = |base: &str| match shard {
            None => base.to_string(),
            Some(k) => hft_obs::registry::labeled(base, "shard", &k.to_string()),
        };
        SnapshotStore {
            current: Mutex::new(Arc::new(CorpusSnapshot {
                generation: 0,
                as_of,
                db,
            })),
            generation: AtomicU64::new(0),
            published_at: Mutex::new(Instant::now()),
            shard,
            generation_gauge: registry.gauge(&name("ingest.generation")),
            swap_ns: registry.histogram(&name("ingest.generation_swap_ns")),
        }
    }

    /// The fleet shard this store publishes for (`None` outside a fleet).
    pub fn shard(&self) -> Option<u32> {
        self.shard
    }

    /// The current snapshot — an `Arc` clone; the caller co-owns the
    /// generation until it drops the handle.
    pub fn current(&self) -> Arc<CorpusSnapshot> {
        Arc::clone(&self.current.lock().expect("snapshot store"))
    }

    /// The current generation number (atomic fast path, no lock).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// How long ago the current generation was published. The serve
    /// layer reports this as its snapshot-staleness gauge.
    pub fn last_publish_age(&self) -> Duration {
        self.published_at.lock().expect("snapshot store").elapsed()
    }

    /// Publish `db` as the next generation and return its number.
    ///
    /// The store mutex is held only for the pointer swap. Readers
    /// holding older snapshots are unaffected; new [`SnapshotStore::current`]
    /// calls see the new generation immediately after the atomic counter
    /// is advanced.
    pub fn publish(&self, db: Arc<UlsDatabase>, as_of: Option<Date>) -> u64 {
        let started = Instant::now();
        let mut current = self.current.lock().expect("snapshot store");
        let generation = current.generation() + 1;
        *current = Arc::new(CorpusSnapshot {
            generation,
            as_of,
            db,
        });
        self.generation.store(generation, Ordering::Release);
        *self.published_at.lock().expect("snapshot store") = Instant::now();
        self.generation_gauge.set(generation as i64);
        self.swap_ns.record(started.elapsed().as_nanos() as u64);
        generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_are_monotonic_and_readers_keep_theirs() {
        let store = SnapshotStore::new(UlsDatabase::new());
        assert_eq!(store.generation(), 0);
        let held = store.current();
        assert_eq!(held.generation(), 0);
        assert!(held.as_of().is_none());

        let d = Date::new(2015, 6, 17).unwrap();
        let g1 = store.publish(Arc::new(UlsDatabase::new()), Some(d));
        assert_eq!(g1, 1);
        assert_eq!(store.generation(), 1);
        assert_eq!(store.current().generation(), 1);
        assert_eq!(store.current().as_of(), Some(d));
        // The earlier reader still holds generation 0, untouched.
        assert_eq!(held.generation(), 0);

        assert_eq!(store.publish(Arc::new(UlsDatabase::new()), Some(d)), 2);
    }

    #[test]
    fn copy_on_write_only_copies_under_readers() {
        // Applier-style usage: mutate a working Arc with make_mut.
        let mut working = Arc::new(UlsDatabase::new());
        let store = SnapshotStore::seeded(Arc::clone(&working), None);
        // The store holds a reference → make_mut must copy.
        let p_before = Arc::as_ptr(&working);
        Arc::make_mut(&mut working);
        assert_ne!(Arc::as_ptr(&working), p_before);
        // Publish the working corpus, then drop the store's old snapshot
        // by publishing again from a fresh handle; with no other holders,
        // make_mut mutates in place.
        store.publish(Arc::clone(&working), None);
        let solo_ptr = Arc::as_ptr(&working);
        store.publish(Arc::new(UlsDatabase::new()), None);
        Arc::make_mut(&mut working);
        assert_eq!(Arc::as_ptr(&working), solo_ptr, "no readers → no copy");
    }
}
