//! Tailing a dump directory: the `serve --follow` data source.
//!
//! A [`DumpFollower`] polls a directory for transaction-dump files it
//! has not yet handed out. Dumps are published atomically (temp file +
//! rename, see [`crate::replay::write_dump`]), so any file whose name
//! matches the `uls_tx_YYYYMMDD.txt` pattern is complete the moment it
//! becomes visible. Files are returned in name order, which the compact
//! date encoding makes chronological order.

use crate::replay::dump_file_date;
use hft_time::Date;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Watches a dump directory and yields each dump file exactly once, in
/// chronological order.
#[derive(Debug)]
pub struct DumpFollower {
    dir: PathBuf,
    seen: BTreeSet<String>,
}

impl DumpFollower {
    /// Follow `dir`. The directory need not exist yet; polls simply
    /// find nothing until it does.
    pub fn new(dir: impl Into<PathBuf>) -> DumpFollower {
        DumpFollower {
            dir: dir.into(),
            seen: BTreeSet::new(),
        }
    }

    /// The directory being followed.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// How many dump files have been handed out so far.
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }

    /// One poll: every not-yet-seen dump file, sorted by name
    /// (= sorted by dump date), paired with its date. Non-dump files
    /// (including in-flight `.tmp` publishes) are ignored.
    pub fn poll(&mut self) -> io::Result<Vec<(PathBuf, Date)>> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut fresh: Vec<(PathBuf, Date)> = Vec::new();
        for entry in entries {
            let path = entry?.path();
            let Some(date) = dump_file_date(&path) else {
                continue;
            };
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n.to_string(),
                None => continue,
            };
            if self.seen.insert(name) {
                fresh.push((path, date));
            }
        }
        fresh.sort_unstable_by_key(|a| a.1);
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DumpBatch;
    use crate::replay::write_dump;

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::new(y, m, day).unwrap()
    }

    fn empty_batch(date: Date) -> DumpBatch {
        DumpBatch {
            date,
            events: Vec::new(),
        }
    }

    #[test]
    fn follower_yields_each_dump_once_in_date_order() {
        let dir = std::env::temp_dir().join(format!("hft_follow_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut follower = DumpFollower::new(&dir);
        // Missing directory: not an error, just nothing yet.
        assert!(follower.poll().unwrap().is_empty());

        fs::create_dir_all(&dir).unwrap();
        // Out-of-order creation; poll must still hand them out by date.
        write_dump(&dir, &empty_batch(d(2014, 3, 2))).unwrap();
        write_dump(&dir, &empty_batch(d(2013, 11, 20))).unwrap();
        // Noise the follower must skip.
        fs::write(dir.join("uls_tx_20150101.txt.tmp"), "partial").unwrap();
        fs::write(dir.join("notes.md"), "unrelated").unwrap();

        let first = follower.poll().unwrap();
        let dates: Vec<Date> = first.iter().map(|(_, d)| *d).collect();
        assert_eq!(dates, vec![d(2013, 11, 20), d(2014, 3, 2)]);
        assert_eq!(follower.seen_count(), 2);

        // Nothing new → nothing returned.
        assert!(follower.poll().unwrap().is_empty());

        // A later publish shows up exactly once.
        write_dump(&dir, &empty_batch(d(2015, 1, 1))).unwrap();
        let second = follower.poll().unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].1, d(2015, 1, 1));
        assert!(follower.poll().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
