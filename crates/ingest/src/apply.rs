//! The incremental applier: folds dump batches into a `UlsDatabase`
//! **in place**, maintaining every secondary index as it goes.
//!
//! The applier owns its working corpus as an `Arc<UlsDatabase>` and
//! mutates through [`Arc::make_mut`]: as long as nobody else holds the
//! published generation, batches mutate in place; the moment a reader
//! (the [`crate::store::SnapshotStore`], an in-flight query session)
//! still holds it, the first mutation of the next batch pays one corpus
//! copy and proceeds — copy-on-write, with the copy priced only when
//! isolation actually demands it.
//!
//! Incremental index maintenance is exactly the part that can silently
//! drift, so the applier also carries its own auditor:
//! [`Applier::rebuild`] constructs a fresh database from the license
//! sequence alone and [`Applier::verify`] compares it against the
//! incrementally maintained one with `UlsDatabase`'s structural
//! equality (license list **and** every index). Verification is for
//! checkpoints and tests only — it is the full rebuild the incremental
//! path exists to avoid.

use crate::delta::{DumpBatch, DumpEvent};
use crate::store::SnapshotStore;
use hft_time::Date;
use hft_uls::{License, UlsDatabase, UlsPortal};
use std::collections::HashSet;
use std::sync::Arc;

/// Why an event was skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConflictKind {
    /// `New` for a call sign that already has a license.
    NewExists,
    /// `New`/`Update` whose license id belongs to a different license.
    DuplicateId(u64),
    /// `Update` for a call sign with no license.
    UpdateMissing,
    /// `Cancel` for a call sign with no license.
    CancelMissing,
}

/// One skipped event: the dump said something the corpus contradicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The batch date the event arrived in.
    pub date: Date,
    /// The call sign the event was keyed on.
    pub call_sign: String,
    /// What went wrong.
    pub kind: ConflictKind,
}

impl std::fmt::Display for Conflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match &self.kind {
            ConflictKind::NewExists => "new license but call sign already exists".to_string(),
            ConflictKind::DuplicateId(id) => {
                format!("license id {id} already belongs to another license")
            }
            ConflictKind::UpdateMissing => "update for unknown call sign".to_string(),
            ConflictKind::CancelMissing => "cancel for unknown call sign".to_string(),
        };
        write!(f, "{} {}: {}", self.date.to_iso(), self.call_sign, what)
    }
}

/// Running totals of everything an [`Applier`] has processed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Batches applied.
    pub batches: u64,
    /// Licenses newly inserted.
    pub added: u64,
    /// Licenses replaced in place.
    pub updated: u64,
    /// Cancellation dates recorded.
    pub cancelled: u64,
    /// Events skipped as conflicts.
    pub conflicts: u64,
}

impl ApplyStats {
    /// Total events applied (not counting conflicts).
    pub fn events(&self) -> u64 {
        self.added + self.updated + self.cancelled
    }
}

/// The incremental applier. See the module docs.
#[derive(Debug)]
pub struct Applier {
    db: Arc<UlsDatabase>,
    last_date: Option<Date>,
    stats: ApplyStats,
}

impl Applier {
    /// An applier starting from `seed` (use `UlsDatabase::new()` to
    /// build a corpus purely from dumps).
    pub fn new(seed: UlsDatabase) -> Applier {
        Applier {
            db: Arc::new(seed),
            last_date: None,
            stats: ApplyStats::default(),
        }
    }

    /// An applier resuming from a published snapshot's corpus.
    pub fn resume(db: Arc<UlsDatabase>, as_of: Option<Date>) -> Applier {
        Applier {
            db,
            last_date: as_of,
            stats: ApplyStats::default(),
        }
    }

    /// The working corpus.
    pub fn db(&self) -> &UlsDatabase {
        &self.db
    }

    /// Running totals.
    pub fn stats(&self) -> ApplyStats {
        self.stats
    }

    /// The date of the last applied batch (or the seed's `as_of`).
    pub fn last_date(&self) -> Option<Date> {
        self.last_date
    }

    /// Fold one batch into the corpus, in event order. Returns the
    /// skipped events; applying never fails.
    ///
    /// Runs of consecutive `New` events are buffered and loaded through
    /// [`UlsDatabase::extend`] — the bulk path that defers sorted-name
    /// maintenance to the end of the run.
    pub fn apply(&mut self, batch: &DumpBatch) -> Vec<Conflict> {
        let _span = hft_obs::span("ingest.apply");
        let started = std::time::Instant::now();
        let before = self.stats;
        let mut conflicts = Vec::new();
        let db = Arc::make_mut(&mut self.db);
        // Pending `New` licenses not yet flushed into the database, with
        // their call signs / ids visible to the conflict checks below.
        let mut pending: Vec<License> = Vec::new();
        let mut pending_calls: HashSet<String> = HashSet::new();
        let mut pending_ids: HashSet<u64> = HashSet::new();
        fn flush(
            db: &mut UlsDatabase,
            pending: &mut Vec<License>,
            calls: &mut HashSet<String>,
            ids: &mut HashSet<u64>,
        ) {
            if !pending.is_empty() {
                db.extend(pending.drain(..));
                calls.clear();
                ids.clear();
            }
        }
        let conflict = |call: &str, kind: ConflictKind| Conflict {
            date: batch.date,
            call_sign: call.to_string(),
            kind,
        };
        for event in &batch.events {
            match event {
                DumpEvent::New(lic) => {
                    let call = &lic.call_sign.0;
                    if db.find_call_sign(call).is_some() || pending_calls.contains(call) {
                        conflicts.push(conflict(call, ConflictKind::NewExists));
                    } else if db.license_detail(lic.id).is_some() || pending_ids.contains(&lic.id.0)
                    {
                        conflicts.push(conflict(call, ConflictKind::DuplicateId(lic.id.0)));
                    } else {
                        pending_calls.insert(call.clone());
                        pending_ids.insert(lic.id.0);
                        pending.push(lic.clone());
                        self.stats.added += 1;
                    }
                }
                DumpEvent::Update(lic) => {
                    flush(db, &mut pending, &mut pending_calls, &mut pending_ids);
                    let call = &lic.call_sign.0;
                    match db.find_call_sign(call) {
                        Some(idx) => {
                            let same_slot = db.licenses()[idx].id == lic.id;
                            if !same_slot && db.license_detail(lic.id).is_some() {
                                conflicts.push(conflict(call, ConflictKind::DuplicateId(lic.id.0)));
                            } else {
                                db.replace(idx, lic.clone());
                                self.stats.updated += 1;
                            }
                        }
                        None => conflicts.push(conflict(call, ConflictKind::UpdateMissing)),
                    }
                }
                DumpEvent::Cancel { call_sign, date } => {
                    flush(db, &mut pending, &mut pending_calls, &mut pending_ids);
                    match db.find_call_sign(&call_sign.0) {
                        Some(idx) => {
                            db.set_cancellation(idx, Some(*date));
                            self.stats.cancelled += 1;
                        }
                        None => conflicts.push(conflict(&call_sign.0, ConflictKind::CancelMissing)),
                    }
                }
            }
        }
        flush(db, &mut pending, &mut pending_calls, &mut pending_ids);
        self.stats.batches += 1;
        self.stats.conflicts += conflicts.len() as u64;
        self.last_date = Some(batch.date);
        // Mirror this batch's deltas into the global registry.
        let registry = hft_obs::global();
        registry.counter("ingest.batches").incr();
        registry
            .counter("ingest.added")
            .add(self.stats.added - before.added);
        registry
            .counter("ingest.updated")
            .add(self.stats.updated - before.updated);
        registry
            .counter("ingest.cancelled")
            .add(self.stats.cancelled - before.cancelled);
        registry
            .counter("ingest.conflicts")
            .add(conflicts.len() as u64);
        registry
            .histogram("ingest.apply_ns")
            .record(started.elapsed().as_nanos() as u64);
        conflicts
    }

    /// Publish the working corpus to `store` as the next generation.
    ///
    /// The store takes a shared handle: the applier's *next* mutation
    /// will copy-on-write if the published generation is still read.
    pub fn publish(&self, store: &SnapshotStore) -> u64 {
        store.publish(Arc::clone(&self.db), self.last_date)
    }

    /// Publish the working corpus across a fleet's shards: the full
    /// corpus is re-partitioned and every shard store advances one
    /// generation in lockstep. See
    /// [`ShardedStore::publish_full`](crate::sharded::ShardedStore::publish_full).
    pub fn publish_sharded(&self, fleet: &crate::sharded::ShardedStore) -> u64 {
        fleet.publish_full(&self.db, self.last_date)
    }

    /// The from-scratch rebuild: a fresh database from the license
    /// sequence alone. Verification only — this is the full-index build
    /// the incremental path exists to avoid.
    pub fn rebuild(&self) -> UlsDatabase {
        UlsDatabase::from_licenses(self.db.licenses().to_vec())
    }

    /// Check the incrementally maintained database against
    /// [`Applier::rebuild`] (structural equality over the license list
    /// and every secondary index).
    pub fn verify(&self) -> Result<(), String> {
        if *self.db == self.rebuild() {
            Ok(())
        } else {
            Err(format!(
                "incremental corpus diverged from rebuild at {} licenses (after {} batches)",
                self.db.len(),
                self.stats.batches
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DumpBatch;
    use hft_geodesy::LatLon;
    use hft_uls::{
        CallSign, FrequencyAssignment, LicenseId, MicrowavePath, RadioService, StationClass,
        TowerSite, UlsPortal,
    };

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::new(y, m, day).unwrap()
    }

    fn lic(id: u64, call: &str, licensee: &str, lat: f64) -> License {
        let tx = TowerSite::at(LatLon::new(lat, -88.17).unwrap());
        let rx = TowerSite::at(LatLon::new(lat + 0.2, -87.67).unwrap());
        License {
            id: LicenseId(id),
            call_sign: CallSign(call.into()),
            licensee: licensee.into(),
            service: RadioService::MG,
            station_class: StationClass::FXO,
            grant_date: d(2015, 6, 17),
            termination_date: None,
            cancellation_date: None,
            paths: vec![MicrowavePath {
                tx,
                rx,
                frequencies: vec![FrequencyAssignment { center_hz: 6.1e9 }],
            }],
        }
    }

    fn batch(date: Date, events: Vec<DumpEvent>) -> DumpBatch {
        DumpBatch { date, events }
    }

    #[test]
    fn new_update_cancel_lifecycle() {
        let mut ap = Applier::new(UlsDatabase::new());
        let conflicts = ap.apply(&batch(
            d(2015, 6, 17),
            vec![
                DumpEvent::New(lic(1, "WQ1", "Alpha", 41.0)),
                DumpEvent::New(lic(2, "WQ2", "Beta", 42.0)),
            ],
        ));
        assert!(conflicts.is_empty());
        assert_eq!(ap.db().len(), 2);
        ap.verify().unwrap();

        // Update relocates WQ2 and renames its licensee.
        let moved = lic(2, "WQ2", "Gamma", 45.0);
        let conflicts = ap.apply(&batch(d(2016, 1, 5), vec![DumpEvent::Update(moved)]));
        assert!(conflicts.is_empty());
        assert_eq!(ap.db().licenses()[1].licensee, "Gamma");
        assert_eq!(ap.db().licensees(), vec!["Alpha", "Gamma"]);
        ap.verify().unwrap();

        let conflicts = ap.apply(&batch(
            d(2018, 3, 1),
            vec![DumpEvent::Cancel {
                call_sign: CallSign("WQ1".into()),
                date: d(2018, 3, 1),
            }],
        ));
        assert!(conflicts.is_empty());
        assert_eq!(ap.db().licenses()[0].cancellation_date, Some(d(2018, 3, 1)));
        ap.verify().unwrap();
        assert_eq!(ap.stats().events(), 4);
        assert_eq!(ap.stats().batches, 3);
    }

    #[test]
    fn conflicts_are_recorded_and_skipped() {
        let mut ap = Applier::new(UlsDatabase::new());
        ap.apply(&batch(
            d(2015, 1, 1),
            vec![DumpEvent::New(lic(1, "WQ1", "Alpha", 41.0))],
        ));
        let conflicts = ap.apply(&batch(
            d(2015, 1, 2),
            vec![
                // Same call sign again.
                DumpEvent::New(lic(9, "WQ1", "Alpha", 41.0)),
                // Same id under a new call sign.
                DumpEvent::New(lic(1, "WQ9", "Alpha", 41.0)),
                // Update of a call sign that never existed.
                DumpEvent::Update(lic(3, "WQ3", "Beta", 42.0)),
                // Cancel of a call sign that never existed.
                DumpEvent::Cancel {
                    call_sign: CallSign("WQ4".into()),
                    date: d(2015, 1, 2),
                },
                // In-batch duplicate: first New buffers, second conflicts.
                DumpEvent::New(lic(5, "WQ5", "Beta", 43.0)),
                DumpEvent::New(lic(6, "WQ5", "Beta", 43.0)),
            ],
        ));
        let kinds: Vec<&ConflictKind> = conflicts.iter().map(|c| &c.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &ConflictKind::NewExists,
                &ConflictKind::DuplicateId(1),
                &ConflictKind::UpdateMissing,
                &ConflictKind::CancelMissing,
                &ConflictKind::NewExists,
            ]
        );
        assert_eq!(ap.db().len(), 2, "only WQ1 and WQ5 exist");
        assert_eq!(ap.stats().conflicts, 5);
        ap.verify().unwrap();
    }

    #[test]
    fn copy_on_write_isolates_published_generations() {
        let mut ap = Applier::new(UlsDatabase::new());
        ap.apply(&batch(
            d(2015, 1, 1),
            vec![DumpEvent::New(lic(1, "WQ1", "Alpha", 41.0))],
        ));
        let store = SnapshotStore::new(UlsDatabase::new());
        ap.publish(&store);
        let held = store.current();
        assert_eq!(held.db().len(), 1);
        assert_eq!(held.as_of(), Some(d(2015, 1, 1)));

        // The next mutation must not disturb the held generation.
        ap.apply(&batch(
            d(2015, 1, 2),
            vec![DumpEvent::New(lic(2, "WQ2", "Beta", 42.0))],
        ));
        assert_eq!(ap.db().len(), 2);
        assert_eq!(held.db().len(), 1, "published snapshot is immutable");
        assert_eq!(ap.publish(&store), 2);
        assert_eq!(store.current().db().len(), 2);
        ap.verify().unwrap();
    }

    #[test]
    fn update_changes_propagate_to_every_index() {
        let mut ap = Applier::new(UlsDatabase::new());
        ap.apply(&batch(
            d(2015, 1, 1),
            vec![
                DumpEvent::New(lic(1, "WQ1", "Alpha", 41.0)),
                DumpEvent::New(lic(2, "WQ2", "Alpha", 41.1)),
            ],
        ));
        let mut moved = lic(2, "WQ2", "Beta", 48.0);
        moved.station_class = StationClass::FB;
        ap.apply(&batch(d(2016, 1, 1), vec![DumpEvent::Update(moved)]));
        let db = ap.db();
        // Geographic index: gone from the old cell, present in the new.
        let old_site = LatLon::new(41.1, -88.17).unwrap();
        let new_site = LatLon::new(48.0, -88.17).unwrap();
        assert!(!db
            .geographic_search(&old_site, 1.0)
            .iter()
            .any(|l| l.id.0 == 2));
        assert!(db
            .geographic_search(&new_site, 1.0)
            .iter()
            .any(|l| l.id.0 == 2));
        // Service/class index follows the class change.
        assert!(db
            .site_search(&RadioService::MG, &StationClass::FB)
            .iter()
            .any(|l| l.id.0 == 2));
        assert!(!db
            .site_search(&RadioService::MG, &StationClass::FXO)
            .iter()
            .any(|l| l.id.0 == 2));
        ap.verify().unwrap();
    }
}
