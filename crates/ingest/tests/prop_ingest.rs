//! Property-based tests for the incremental applier: for arbitrary
//! event streams chopped into arbitrary daily batches, the in-place
//! applier must land on exactly the database a from-scratch
//! `UlsDatabase::from_licenses` build over the reference model produces
//! — the license list, the site bucket grid, the `(service, class)`
//! index, and the sorted licensee-name cache. A second property checks
//! that the final corpus depends only on the event sequence, never on
//! how it was split into batches.

use hft_geodesy::LatLon;
use hft_ingest::model::apply_events;
use hft_ingest::{Applier, DumpBatch, DumpEvent};
use hft_time::Date;
use hft_uls::{
    CallSign, FrequencyAssignment, License, LicenseId, MicrowavePath, RadioService, StationClass,
    TowerSite, UlsDatabase, UlsPortal,
};
use proptest::prelude::*;

/// A compact spec for one event, over a deliberately small key space so
/// streams collide: call signs repeat (driving `NewExists`, updates and
/// cancels of live licenses), and ids repeat (driving `DuplicateId`).
#[derive(Debug, Clone)]
enum EventSpec {
    New {
        id: u64,
        call: u8,
        who: u8,
        lat: f64,
    },
    Update {
        id: u64,
        call: u8,
        who: u8,
        lat: f64,
    },
    Cancel {
        call: u8,
    },
}

fn license(id: u64, call: u8, who: u8, lat: f64, day: Date) -> License {
    let tx = TowerSite::at(LatLon::new(lat, -88.2).unwrap());
    let rx = TowerSite::at(LatLon::new(lat + 0.3, -87.6).unwrap());
    License {
        id: LicenseId(id),
        call_sign: CallSign(format!("WQ{call:03}")),
        licensee: format!("Licensee {}", who % 5),
        service: if who.is_multiple_of(3) {
            RadioService::MG
        } else {
            RadioService::CF
        },
        station_class: if who.is_multiple_of(2) {
            StationClass::FXO
        } else {
            StationClass::FB
        },
        grant_date: day,
        termination_date: None,
        cancellation_date: None,
        paths: vec![MicrowavePath {
            tx,
            rx,
            frequencies: vec![FrequencyAssignment { center_hz: 6.0e9 }],
        }],
    }
}

fn arb_event() -> impl Strategy<Value = EventSpec> {
    // New twice as often as Update/Cancel so streams actually grow.
    prop_oneof![
        (1u64..40, 0u8..12, 0u8..8, 38.0f64..45.0)
            .prop_map(|(id, call, who, lat)| EventSpec::New { id, call, who, lat }),
        (1u64..40, 0u8..12, 4u8..8, 38.0f64..45.0)
            .prop_map(|(id, call, who, lat)| EventSpec::New { id, call, who, lat }),
        (1u64..40, 0u8..12, 0u8..8, 38.0f64..45.0)
            .prop_map(|(id, call, who, lat)| EventSpec::Update { id, call, who, lat }),
        (0u8..12).prop_map(|call| EventSpec::Cancel { call }),
    ]
}

/// Render an event stream as dated batches, splitting after an event
/// whenever the matching entry of `splits` says so. Batch dates ascend
/// one day per batch; every license is stamped with its batch date so
/// updates genuinely change the record they replace.
fn to_batches(specs: &[EventSpec], splits: &[bool]) -> Vec<DumpBatch> {
    let mut batches = Vec::new();
    let mut day = Date::new(2015, 1, 1).unwrap();
    let mut events = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let event = match *spec {
            EventSpec::New { id, call, who, lat } => {
                DumpEvent::New(license(id, call, who, lat, day))
            }
            EventSpec::Update { id, call, who, lat } => {
                DumpEvent::Update(license(id, call, who, lat, day))
            }
            EventSpec::Cancel { call } => DumpEvent::Cancel {
                call_sign: CallSign(format!("WQ{call:03}")),
                date: day,
            },
        };
        events.push(event);
        if splits.get(i).copied().unwrap_or(false) {
            batches.push(DumpBatch {
                date: day,
                events: std::mem::take(&mut events),
            });
            day = day.add_days(1);
        }
    }
    if !events.is_empty() {
        batches.push(DumpBatch { date: day, events });
    }
    batches
}

fn arb_splits(max: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec((0u8..2).prop_map(|b| b == 1), 0..max)
}

fn ids(licenses: &[&License]) -> Vec<u64> {
    licenses.iter().map(|l| l.id.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_apply_equals_from_scratch_rebuild(
        specs in proptest::collection::vec(arb_event(), 0..80),
        splits in arb_splits(80),
        center in (38.0f64..45.0, -89.0f64..-87.0),
    ) {
        let batches = to_batches(&specs, &splits);
        let mut applier = Applier::new(UlsDatabase::new());
        let mut model: Vec<License> = Vec::new();
        let mut model_conflicts = 0usize;
        for batch in &batches {
            let skipped = applier.apply(batch);
            let expect = apply_events(&mut model, batch);
            prop_assert_eq!(skipped.len(), expect, "applier and model disagree on conflicts");
            model_conflicts += expect;
        }
        prop_assert_eq!(applier.stats().conflicts as usize, model_conflicts);

        // Structural equality: the license list and every secondary
        // index must match a from-scratch build over the model.
        let rebuilt = UlsDatabase::from_licenses(model.clone());
        prop_assert!(
            *applier.db() == rebuilt,
            "incrementally maintained database diverged from from-scratch rebuild",
        );

        // Belt and braces: exercise the indexes as query engines too.
        let center = LatLon::new(center.0, center.1).unwrap();
        prop_assert_eq!(
            ids(&applier.db().geographic_search(&center, 150.0)),
            ids(&rebuilt.geographic_search(&center, 150.0)),
        );
        prop_assert_eq!(
            ids(&applier.db().site_search(&RadioService::MG, &StationClass::FXO)),
            ids(&rebuilt.site_search(&RadioService::MG, &StationClass::FXO)),
        );
        prop_assert_eq!(applier.db().licensees(), rebuilt.licensees());
        prop_assert!(applier.verify().is_ok(), "Applier::verify rejected its own state");
    }

    #[test]
    fn final_corpus_is_invariant_under_batch_splits(
        specs in proptest::collection::vec(arb_event(), 0..60),
        splits_a in arb_splits(60),
        splits_b in arb_splits(60),
    ) {
        // Two different choppings of the same event stream may stamp
        // licenses with different batch dates, so compare against each
        // split's own model — each must match its rebuild exactly, and
        // the two must agree on the call-sign population.
        let mut finals = Vec::new();
        for splits in [&splits_a, &splits_b] {
            let batches = to_batches(&specs, splits);
            let mut applier = Applier::new(UlsDatabase::new());
            let mut model: Vec<License> = Vec::new();
            for batch in &batches {
                applier.apply(batch);
                apply_events(&mut model, batch);
            }
            prop_assert!(*applier.db() == UlsDatabase::from_licenses(model));
            let mut calls: Vec<String> = applier
                .db()
                .licenses()
                .iter()
                .map(|l| l.call_sign.0.clone())
                .collect();
            calls.sort_unstable();
            finals.push(calls);
        }
        prop_assert_eq!(&finals[0], &finals[1]);
    }
}
