//! # hft-corridor
//!
//! A calibrated synthetic stand-in for the real 2012–2020 FCC license
//! corpus of the Chicago–New Jersey HFT corridor.
//!
//! The IMC'20 paper's analyses consume nothing but license records
//! (coordinates, dates, frequencies). This crate generates such a corpus
//! whose *analysis results* match the paper's published numbers:
//!
//! * every connected network of Table 1 (New Line Networks, Pierce
//!   Broadband, Jefferson Microwave, Blueline Comm, Webline Holdings,
//!   AQ2AT, Wireless Internetwork, GTT Americas, SW Networks), with its
//!   latency, APA and tower count;
//! * the per-path rankings and latencies of Table 2 and the APA contrasts
//!   of Table 3;
//! * the latency and license-count trajectories of Figs 1 and 2,
//!   including National Tower Company's rise and 2017–18 collapse and
//!   Pierce Broadband's 2020 arrival;
//! * the link-length and frequency distributions of Fig 4 (Webline
//!   short/6 GHz vs NLN long/11 GHz);
//! * the §2.2 funnel: 57 MG/FXO candidate licensees near CME, 29 with
//!   ≥ 11 filings.
//!
//! Calibration is *closed-loop*: the generator runs the actual
//! `hft-core` routing code and binary-searches its geometry knobs (tower
//! lateral offsets) until each latency target is met, so the corpus and
//! the analysis can never drift apart.
//!
//! Everything is deterministic in the scenario plus a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
pub mod layout;
mod noise;
mod spec;

pub use build::{generate, GeneratedEcosystem};
pub use spec::{
    chicago_nj, ApaTargets, EraTarget, LicenseAnchor, NetworkSpec, PathTargets, ScenarioSpec,
};
