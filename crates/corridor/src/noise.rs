//! Funnel-noise licensees: the §2.2 pipeline only means something if the
//! corpus contains realistic negatives — partially built corridor
//! networks (shortlisted but never end-to-end), small local microwave
//! users near CME (dropped by the ≥11-filings rule), and non-MG services
//! near CME (dropped by the site-based service filter).

use crate::layout::{make_chain_geometry, place_chain};
use hft_geodesy::{gc_destination, gc_interpolate, LatLon, RadiusTest};
use hft_radio::{Band, BandPlan};
use hft_time::Date;
use hft_uls::{
    CallSign, FrequencyAssignment, License, LicenseId, MicrowavePath, RadioService, StationClass,
    TowerSite,
};
use rand::Rng;

/// Deterministic partial-licensee names (19 of them, matching the
/// scenario's `partial_licensees` default).
const PARTIAL_NAMES: [&str; 19] = [
    "Midwest Relay LLC",
    "Great Lakes Wave",
    "Prairie Link Systems",
    "Fox Valley Microwave",
    "Allegheny Crossing",
    "Heartland Spectrum",
    "Keystone Wireless Route",
    "Lakeshore Transmission",
    "Twin Rivers Radio",
    "Summit Path Networks",
    "Interstate Beam Co",
    "Tri-State Millimeter",
    "Continental Hop LLC",
    "Apex Corridor Comm",
    "Meridian Line Partners",
    "Blue Ridge Relay",
    "Gateway Spectrum Works",
    "Northern Plains Link",
    "Ohio Valley Wave",
];

fn site<R: Rng + ?Sized>(rng: &mut R, p: LatLon) -> TowerSite {
    TowerSite {
        position: p,
        ground_elevation_m: 180.0 + rng.gen::<f64>() * 180.0,
        structure_height_m: 60.0 + rng.gen::<f64>() * 120.0,
    }
}

/// Allocate monotonically increasing ids/call signs.
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Start allocating at `first`.
    pub fn new(first: u64) -> IdAllocator {
        IdAllocator { next: first }
    }

    /// Next (id, call sign) pair.
    pub fn next_id(&mut self) -> (LicenseId, CallSign) {
        let id = self.next;
        self.next += 1;
        (LicenseId(id), CallSign(format!("WQ{id:06}")))
    }
}

/// Generate the partially built corridor licensees: chains that start
/// near CME and head towards NJ but stop partway (under construction,
/// abandoned, or serving intermediate markets).
pub fn partial_licensees<R: Rng + ?Sized>(
    count: usize,
    cme: &LatLon,
    ny4: &LatLon,
    ids: &mut IdAllocator,
    rng: &mut R,
) -> Vec<License> {
    let mut out = Vec::new();
    // Placement invariant, checked with the same kernel the portal's
    // geographic search runs on: every partial chain must start inside
    // the paper's 10 km scrape radius or the funnel never sees it.
    // Hoisted once per generator call; draws no rng values.
    let search_zone = RadiusTest::new(cme, 10_000.0);
    for i in 0..count {
        let name = PARTIAL_NAMES[i % PARTIAL_NAMES.len()];
        let name = if i < PARTIAL_NAMES.len() {
            name.to_string()
        } else {
            format!("{name} {}", i / PARTIAL_NAMES.len() + 1)
        };
        // Chains cover 20%-60% of the corridor with 12..=24 towers.
        let reach = 0.2 + rng.gen::<f64>() * 0.4;
        let towers = 12 + (rng.gen::<f64>() * 13.0) as usize;
        let start = gc_interpolate(cme, ny4, 0.002 + rng.gen::<f64>() * 0.004);
        debug_assert!(
            search_zone.contains(&start),
            "partial chain start left the geographic-search radius"
        );
        let end = gc_interpolate(cme, ny4, reach);
        let geometry = make_chain_geometry(towers - 2, rng);
        let points = place_chain(
            &start,
            &end,
            &geometry,
            1_000.0 + rng.gen::<f64>() * 4_000.0,
        );
        let plan = BandPlan::new(Band::B11GHz);
        let channels = plan.assign_chain(points.len() - 1);
        let grant_year = 2013 + (rng.gen::<f64>() * 6.0) as i32;
        let grant = Date::new(
            grant_year,
            1 + (rng.gen::<f64>() * 11.0) as u32,
            1 + (rng.gen::<f64>() * 27.0) as u32,
        )
        .expect("generated date valid");
        // A third of them gave up and cancelled everything.
        let cancel = (rng.gen::<f64>() < 0.33)
            .then(|| grant.add_days(400 + (rng.gen::<f64>() * 800.0) as i64));
        for (k, w) in points.windows(2).enumerate() {
            let (id, call_sign) = ids.next_id();
            out.push(License {
                id,
                call_sign,
                licensee: name.clone(),
                service: RadioService::MG,
                station_class: StationClass::FXO,
                grant_date: grant.add_days((k as i64) * 9),
                termination_date: Some(grant.add_days(3650)),
                cancellation_date: cancel,
                paths: vec![MicrowavePath {
                    tx: site(rng, w[0]),
                    rx: site(rng, w[1]),
                    frequencies: vec![FrequencyAssignment {
                        center_hz: channels[k].center_hz,
                    }],
                }],
            });
        }
    }
    out
}

/// Small MG/FXO licensees near CME (utilities, quarries, pipelines):
/// 1..=10 filings each, never forming a corridor.
pub fn small_licensees<R: Rng + ?Sized>(
    count: usize,
    cme: &LatLon,
    ids: &mut IdAllocator,
    rng: &mut R,
) -> Vec<License> {
    let mut out = Vec::new();
    let plan = BandPlan::new(Band::U6GHz);
    for i in 0..count {
        let name = format!("Aurora Industrial Wireless {:02}", i + 1);
        let filings = 1 + (rng.gen::<f64>() * 10.0) as usize; // 1..=10
        for k in 0..filings {
            // One endpoint within the 10 km CME search radius.
            let near = gc_destination(cme, rng.gen::<f64>() * 360.0, rng.gen::<f64>() * 8_000.0);
            let far = gc_destination(
                &near,
                rng.gen::<f64>() * 360.0,
                4_000.0 + rng.gen::<f64>() * 26_000.0,
            );
            let (id, call_sign) = ids.next_id();
            let grant = Date::new(
                2012 + (rng.gen::<f64>() * 7.0) as i32,
                1 + (rng.gen::<f64>() * 11.0) as u32,
                5,
            )
            .expect("generated date valid");
            out.push(License {
                id,
                call_sign,
                licensee: name.clone(),
                service: RadioService::MG,
                station_class: StationClass::FXO,
                grant_date: grant,
                termination_date: Some(grant.add_days(3650)),
                cancellation_date: None,
                paths: vec![MicrowavePath {
                    tx: site(rng, near),
                    rx: site(rng, far),
                    frequencies: vec![FrequencyAssignment {
                        center_hz: plan.channel(k + i).center_hz,
                    }],
                }],
            });
        }
    }
    out
}

/// Non-MG licensees near CME (common-carrier and broadcast-auxiliary
/// microwave), dropped by the site-based `MG`/`FXO` filter.
pub fn other_service_licensees<R: Rng + ?Sized>(
    count: usize,
    cme: &LatLon,
    ids: &mut IdAllocator,
    rng: &mut R,
) -> Vec<License> {
    let mut out = Vec::new();
    let plan = BandPlan::new(Band::B18GHz);
    for i in 0..count {
        let (service, tag) = if i % 2 == 0 {
            (RadioService::CF, "Carrier")
        } else {
            (RadioService::AF, "Broadcast")
        };
        let name = format!("Chicagoland {tag} Net {:02}", i / 2 + 1);
        let filings = 2 + (rng.gen::<f64>() * 12.0) as usize;
        for k in 0..filings {
            let near = gc_destination(cme, rng.gen::<f64>() * 360.0, rng.gen::<f64>() * 9_000.0);
            let far = gc_destination(
                &near,
                rng.gen::<f64>() * 360.0,
                5_000.0 + rng.gen::<f64>() * 20_000.0,
            );
            let (id, call_sign) = ids.next_id();
            let grant = Date::new(2011 + (rng.gen::<f64>() * 8.0) as i32, 3, 15).expect("valid");
            out.push(License {
                id,
                call_sign,
                licensee: name.clone(),
                service: service.clone(),
                station_class: if i % 2 == 0 {
                    StationClass::FXO
                } else {
                    StationClass::FB
                },
                grant_date: grant,
                termination_date: Some(grant.add_days(3650)),
                cancellation_date: None,
                paths: vec![MicrowavePath {
                    tx: site(rng, near),
                    rx: site(rng, far),
                    frequencies: vec![FrequencyAssignment {
                        center_hz: plan.channel(k * 3 + i).center_hz,
                    }],
                }],
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cme() -> LatLon {
        LatLon::new(41.7625, -88.171233).unwrap()
    }

    fn ny4() -> LatLon {
        LatLon::new(40.7930, -74.0576).unwrap()
    }

    #[test]
    fn partials_have_at_least_eleven_filings() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ids = IdAllocator::new(1);
        let lics = partial_licensees(19, &cme(), &ny4(), &mut ids, &mut rng);
        let mut names: Vec<&str> = lics.iter().map(|l| l.licensee.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19);
        for name in names {
            let n = lics.iter().filter(|l| l.licensee == name).count();
            assert!(n >= 11, "{name} has only {n} filings");
        }
    }

    #[test]
    fn partials_touch_cme_radius() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut ids = IdAllocator::new(1);
        let lics = partial_licensees(19, &cme(), &ny4(), &mut ids, &mut rng);
        let mut names: Vec<&str> = lics.iter().map(|l| l.licensee.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        for name in names {
            let near = lics
                .iter()
                .filter(|l| l.licensee == name)
                .any(|l| l.within_radius(&cme(), 10.0));
            assert!(near, "{name} untouched by geographic search");
        }
    }

    #[test]
    fn partials_never_reach_nj() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut ids = IdAllocator::new(1);
        let lics = partial_licensees(19, &cme(), &ny4(), &mut ids, &mut rng);
        for l in &lics {
            assert!(
                !l.within_radius(&ny4(), 100.0),
                "partial reached NJ: {}",
                l.licensee
            );
        }
    }

    #[test]
    fn smalls_have_fewer_than_eleven() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut ids = IdAllocator::new(1);
        let lics = small_licensees(28, &cme(), &mut ids, &mut rng);
        let mut names: Vec<&str> = lics.iter().map(|l| l.licensee.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 28);
        for name in names {
            let n = lics.iter().filter(|l| l.licensee == name).count();
            assert!((1..=10).contains(&n), "{name}: {n}");
        }
    }

    #[test]
    fn others_are_not_mg() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ids = IdAllocator::new(1);
        let lics = other_service_licensees(12, &cme(), &mut ids, &mut rng);
        assert!(!lics.is_empty());
        for l in &lics {
            assert_ne!(l.service, RadioService::MG);
        }
    }

    #[test]
    fn ids_unique_across_groups() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut ids = IdAllocator::new(1);
        let mut all = partial_licensees(5, &cme(), &ny4(), &mut ids, &mut rng);
        all.extend(small_licensees(5, &cme(), &mut ids, &mut rng));
        all.extend(other_service_licensees(4, &cme(), &mut ids, &mut rng));
        let mut seen: Vec<u64> = all.iter().map(|l| l.id.0).collect();
        let before = seen.len();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), before);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(11);
        let mut r2 = ChaCha8Rng::seed_from_u64(11);
        let mut i1 = IdAllocator::new(1);
        let mut i2 = IdAllocator::new(1);
        let a = small_licensees(5, &cme(), &mut i1, &mut r1);
        let b = small_licensees(5, &cme(), &mut i2, &mut r2);
        assert_eq!(a, b);
    }
}
