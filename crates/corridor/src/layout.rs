//! Geometric construction of tower chains.
//!
//! A network's route is modeled as a *chain*: fixed start/end anchor
//! towers plus interior towers spread along the great circle between
//! them, each displaced laterally by `unit_offset · scale`. Scaling the
//! offsets lengthens the path smoothly and monotonically, which is the
//! knob the calibration loop bisects to hit a latency target: real
//! networks get faster by acquiring tower sites closer to the geodesic,
//! which is exactly a shrink of these offsets.

use hft_geodesy::{gc_destination, gc_distance_m, gc_initial_bearing_deg, gc_interpolate, LatLon};
use rand::Rng;

/// The scale-independent geometry of a chain's interior towers.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainGeometry {
    /// Along-chain fractions in `(0, 1)`, strictly increasing.
    pub ts: Vec<f64>,
    /// Unit lateral offsets in `[-1, 1]`, one per interior tower.
    pub unit_offsets: Vec<f64>,
}

impl ChainGeometry {
    /// Interior tower count.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True when the chain has no interior towers.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }
}

/// Generate the geometry for `n_interior` towers: near-even spacing with
/// mild jitter, and smooth pseudo-random lateral offsets that vanish at
/// the chain ends (the anchors are fixed).
pub fn make_chain_geometry<R: Rng + ?Sized>(n_interior: usize, rng: &mut R) -> ChainGeometry {
    if n_interior == 0 {
        return ChainGeometry {
            ts: Vec::new(),
            unit_offsets: Vec::new(),
        };
    }
    let n = n_interior;
    let mut ts = Vec::with_capacity(n);
    for i in 0..n {
        let base = (i + 1) as f64 / (n + 1) as f64;
        // Spacing jitter of up to ±20% of a slot keeps ordering intact.
        let jitter = (rng.gen::<f64>() - 0.5) * 0.4 / (n + 1) as f64;
        ts.push((base + jitter).clamp(1e-3, 1.0 - 1e-3));
    }
    ts.sort_by(|a, b| a.partial_cmp(b).expect("finite fractions"));

    // Smooth offsets: two superposed sinusoids with random phases, times
    // a taper that zeroes the ends.
    let phase1 = rng.gen::<f64>() * core::f64::consts::TAU;
    let phase2 = rng.gen::<f64>() * core::f64::consts::TAU;
    let w1 = 2.0 + rng.gen::<f64>() * 2.0; // 2..4 full waves
    let w2 = 5.0 + rng.gen::<f64>() * 3.0; // 5..8 waves
    let unit_offsets = ts
        .iter()
        .map(|&t| {
            let taper = (core::f64::consts::PI * t).sin();
            let wave = 0.75 * (core::f64::consts::TAU * w1 * t + phase1).sin()
                + 0.25 * (core::f64::consts::TAU * w2 * t + phase2).sin();
            (taper * wave).clamp(-1.0, 1.0)
        })
        .collect();
    ChainGeometry { ts, unit_offsets }
}

/// Place a chain: anchors at `start` and `end`, interior towers at their
/// along-fractions, displaced `unit_offset · scale_m` meters perpendicular
/// to the local great-circle bearing. Returns all towers in order,
/// including the anchors.
pub fn place_chain(
    start: &LatLon,
    end: &LatLon,
    geometry: &ChainGeometry,
    scale_m: f64,
) -> Vec<LatLon> {
    let mut out = Vec::with_capacity(geometry.len() + 2);
    out.push(*start);
    for (&t, &u) in geometry.ts.iter().zip(&geometry.unit_offsets) {
        let on_line = gc_interpolate(start, end, t);
        let bearing = gc_initial_bearing_deg(&on_line, end);
        out.push(gc_destination(&on_line, bearing + 90.0, u * scale_m));
    }
    out.push(*end);
    out
}

/// Place a chain with explicit per-tower lateral offsets (meters) instead
/// of a single scale — used when towers have individually materialized
/// positions that no longer share one scale factor.
pub fn place_chain_with_offsets(
    start: &LatLon,
    end: &LatLon,
    ts: &[f64],
    offsets_m: &[f64],
) -> Vec<LatLon> {
    assert_eq!(ts.len(), offsets_m.len(), "one offset per interior tower");
    let mut out = Vec::with_capacity(ts.len() + 2);
    out.push(*start);
    for (&t, &off) in ts.iter().zip(offsets_m) {
        let on_line = gc_interpolate(start, end, t);
        let bearing = gc_initial_bearing_deg(&on_line, end);
        out.push(gc_destination(&on_line, bearing + 90.0, off));
    }
    out.push(*end);
    out
}

/// Total geodesic length of a polyline, meters.
///
/// Uses the ellipsoidal (Vincenty) distance — the same metric the
/// analysis code measures with — *not* the spherical approximation, so
/// closed-loop calibration cannot drift by the ~0.2% sphere/ellipsoid
/// difference (≈ 2 km ≈ 8 µs over this corridor, which would scramble
/// sub-microsecond rankings).
pub fn polyline_length_m(points: &[LatLon]) -> f64 {
    points
        .windows(2)
        .map(|w| w[0].geodesic_distance_m(&w[1]))
        .sum()
}

/// Solve for the offset scale that makes the placed chain's length equal
/// `target_len_m`, by bisection over `[0, max]` (length is monotone in the
/// scale). Returns `None` when the target is below the scale-0 length
/// (physically unreachable: the chain cannot be shorter than its
/// zero-offset layout) or above the maximum-scale length.
pub fn solve_scale(
    start: &LatLon,
    end: &LatLon,
    geometry: &ChainGeometry,
    target_len_m: f64,
) -> Option<f64> {
    let len_at = |s: f64| polyline_length_m(&place_chain(start, end, geometry, s));
    let min_len = len_at(0.0);
    if target_len_m < min_len - 1e-6 {
        return None;
    }
    if geometry.is_empty() {
        // No knob to turn; only an (approximately) exact match works.
        let tolerance = 1.0f64.max(min_len * 1e-6);
        return ((target_len_m - min_len).abs() <= tolerance).then_some(0.0);
    }
    let mut hi = 1_000.0;
    while len_at(hi) < target_len_m {
        hi *= 2.0;
        if hi > 5.0e7 {
            return None; // target absurdly long
        }
    }
    let mut lo = 0.0;
    for _ in 0..80 {
        let mid = (lo + hi) / 2.0;
        if len_at(mid) < target_len_m {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some((lo + hi) / 2.0)
}

/// Sample points along a polyline at (approximately) `spacing_m`
/// intervals, displaced `lateral_m` meters perpendicular to the local
/// direction of travel — the rail-tower generator. The samples exclude
/// the polyline's endpoints.
pub fn sample_along(points: &[LatLon], spacing_m: f64, lateral_m: f64) -> Vec<LatLon> {
    assert!(spacing_m > 0.0, "spacing must be positive");
    // Spherical arithmetic throughout this routine: it only controls
    // spacing, where the 0.2% sphere/ellipsoid difference is irrelevant,
    // and mixing metrics would misplace the final sample.
    let total: f64 = points.windows(2).map(|w| gc_distance_m(&w[0], &w[1])).sum();
    if total <= spacing_m || points.len() < 2 {
        return Vec::new();
    }
    let n = (total / spacing_m).floor() as usize;
    let mut out = Vec::new();
    // Walk cumulative distances.
    let mut seg_start = 0usize;
    let mut seg_acc = 0.0;
    let mut seg_len = gc_distance_m(&points[0], &points[1]);
    for k in 1..n {
        let d = k as f64 * total / n as f64;
        while seg_acc + seg_len < d && seg_start + 2 < points.len() {
            seg_acc += seg_len;
            seg_start += 1;
            seg_len = gc_distance_m(&points[seg_start], &points[seg_start + 1]);
        }
        let within = ((d - seg_acc) / seg_len).clamp(0.0, 1.0);
        let a = &points[seg_start];
        let b = &points[seg_start + 1];
        let on_line = gc_interpolate(a, b, within);
        let bearing = gc_initial_bearing_deg(a, b);
        out.push(gc_destination(&on_line, bearing + 90.0, lateral_m));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn endpoints() -> (LatLon, LatLon) {
        (
            LatLon::new(41.7625, -88.171233).unwrap(),
            LatLon::new(40.7930, -74.0576).unwrap(),
        )
    }

    #[test]
    fn geometry_is_deterministic_per_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(
            make_chain_geometry(20, &mut r1),
            make_chain_geometry(20, &mut r2)
        );
    }

    #[test]
    fn geometry_fractions_ordered_and_offsets_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = make_chain_geometry(30, &mut rng);
        for w in g.ts.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &o in &g.unit_offsets {
            assert!((-1.0..=1.0).contains(&o));
        }
    }

    #[test]
    fn zero_interior_chain() {
        let g = ChainGeometry {
            ts: vec![],
            unit_offsets: vec![],
        };
        let (a, b) = endpoints();
        let placed = place_chain(&a, &b, &g, 1000.0);
        assert_eq!(placed.len(), 2);
        let len = polyline_length_m(&placed);
        assert!((len - a.geodesic_distance_m(&b)).abs() < 1.0);
    }

    #[test]
    fn scale_zero_is_nearly_geodesic() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = make_chain_geometry(23, &mut rng);
        let (a, b) = endpoints();
        let placed = place_chain(&a, &b, &g, 0.0);
        let len = polyline_length_m(&placed);
        let geo = a.geodesic_distance_m(&b);
        assert!(len >= geo);
        assert!(len < geo * 1.000001, "len {len} vs geo {geo}");
    }

    #[test]
    fn length_monotone_in_scale() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = make_chain_geometry(23, &mut rng);
        let (a, b) = endpoints();
        let mut prev = 0.0;
        for s in [0.0, 500.0, 1500.0, 4000.0, 10_000.0] {
            let len = polyline_length_m(&place_chain(&a, &b, &g, s));
            assert!(len > prev, "scale {s}");
            prev = len;
        }
    }

    #[test]
    fn solve_scale_hits_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = make_chain_geometry(23, &mut rng);
        let (a, b) = endpoints();
        let geo = a.geodesic_distance_m(&b);
        for extra_m in [300.0, 1_000.0, 10_000.0, 100_000.0] {
            let target = geo + extra_m;
            let s = solve_scale(&a, &b, &g, target).expect("solvable");
            let got = polyline_length_m(&place_chain(&a, &b, &g, s));
            assert!(
                (got - target).abs() < 0.5,
                "extra {extra_m}: got {got} want {target}"
            );
        }
    }

    #[test]
    fn solve_scale_rejects_shorter_than_geodesic() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = make_chain_geometry(23, &mut rng);
        let (a, b) = endpoints();
        let geo = a.geodesic_distance_m(&b);
        assert!(solve_scale(&a, &b, &g, geo - 10_000.0).is_none());
    }

    #[test]
    fn placed_chain_has_expected_count_and_order() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = make_chain_geometry(10, &mut rng);
        let (a, b) = endpoints();
        let placed = place_chain(&a, &b, &g, 2_000.0);
        assert_eq!(placed.len(), 12);
        // Distance from start must grow monotonically along the chain.
        let mut prev = -1.0;
        for p in &placed {
            let d = gc_distance_m(&a, p);
            assert!(d > prev);
            prev = d;
        }
    }

    #[test]
    fn sample_along_spacing() {
        let (a, b) = endpoints();
        let line = vec![a, b];
        let samples = sample_along(&line, 50_000.0, 4_000.0);
        let total = gc_distance_m(&a, &b);
        let expect = (total / 50_000.0).floor() as usize - 1;
        assert_eq!(samples.len(), expect);
        // Each sample sits ~4 km off the direct line: distance from the
        // line's interpolation at matching fraction is ~lateral.
        for (k, s) in samples.iter().enumerate() {
            let d = (k + 1) as f64 * total / (expect + 1) as f64;
            let on_line = gc_interpolate(&a, &b, d / total);
            let off = gc_distance_m(&on_line, s);
            assert!((off - 4_000.0).abs() < 50.0, "sample {k}: off {off}");
        }
    }

    #[test]
    fn sample_along_short_polyline_is_empty() {
        let a = LatLon::new(41.0, -88.0).unwrap();
        let b = LatLon::new(41.0, -87.9).unwrap(); // ~8 km
        assert!(sample_along(&[a, b], 50_000.0, 4_000.0).is_empty());
        assert!(sample_along(&[a], 50_000.0, 4_000.0).is_empty());
    }

    #[test]
    fn lateral_rail_is_longer_than_parent_between_same_anchors() {
        // Build a rail polyline: parent anchors + offset samples; its
        // length must exceed the parent's (the handicap that keeps rails
        // off the shortest path).
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = make_chain_geometry(12, &mut rng);
        let (a, b) = endpoints();
        let parent = place_chain(&a, &b, &g, 1_500.0);
        let rail_interior = sample_along(&parent, 40_000.0, 4_000.0);
        let mut rail = vec![parent[0]];
        rail.extend(rail_interior);
        rail.push(*parent.last().unwrap());
        assert!(polyline_length_m(&rail) > polyline_length_m(&parent));
    }
}
