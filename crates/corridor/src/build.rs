//! The ecosystem generator: turns a [`ScenarioSpec`] into a ULS license
//! corpus whose analysis reproduces the paper's numbers.
//!
//! Construction of one network:
//!
//! 1. **Skeleton** — a *trunk* from a tower ~1 km outside CME along the
//!    CME→NY4 geodesic to a branch tower at 25% of the corridor, then
//!    *spurs* from the branch to towers just outside each served data
//!    center. Interior towers carry lateral offsets.
//! 2. **Era calibration** — for each Fig.-1 era, bisect a common offset
//!    scale for the trunk + NY4 spur so the end-to-end polyline length
//!    (plus the fiber tails at `2c/3`) hits the era's latency target.
//!    Only towers whose offset changes by more than a threshold
//!    *materialize* a move (a re-filed license); the final era uses a
//!    zero threshold so the 2020 snapshot is exact to sub-microsecond.
//! 3. **Rails** — redundant parallel chains over the covered fraction of
//!    route links dictated by the APA targets, laterally offset so they
//!    are always slightly longer than the links they protect (they add
//!    redundancy without ever becoming the shortest path).
//! 4. **Licenses** — every link emits one license per *epoch* (the spans
//!    between its endpoints' moves); spare licenses top the count up to
//!    the Fig.-2 anchors; National Tower Company's shutdown staggers
//!    cancellations across 2017–18.

use crate::layout::{
    make_chain_geometry, place_chain_with_offsets, polyline_length_m, sample_along, ChainGeometry,
};
use crate::noise::{self, IdAllocator};
use crate::spec::{NetworkSpec, ScenarioSpec};
use hft_core::corridor::{CME, EQUINIX_NY4, NASDAQ, NYSE};
use hft_core::session::{fingerprint_words, AnalysisSession, RouteMemo};
use hft_geodesy::{
    gc_destination, gc_distance_m, gc_initial_bearing_deg, gc_interpolate, LatLon, Medium,
};
use hft_radio::{Band, BandPlan};
use hft_time::Date;
use hft_uls::{
    FrequencyAssignment, License, MicrowavePath, RadioService, StationClass, TowerSite, UlsDatabase,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Fraction of the corridor covered by the shared trunk before the spurs
/// branch off towards the individual NJ data centers. The trunk stays
/// essentially straight (all latency-calibration wiggle lives on the
/// spurs) because the NASDAQ latency targets leave only ~1–2 µs of slack
/// over the branch dogleg.
const BRANCH_FRAC: f64 = 0.18;
/// Fixed lateral wiggle scale of the (near-straight) trunk, meters.
const TRUNK_SCALE_M: f64 = 150.0;
/// Lateral offset of redundancy rails from their parent chain, meters.
const RAIL_OFFSET_M: f64 = 4_000.0;
/// Minimum offset change that materializes a tower move (and thus a
/// license re-filing) in non-final eras, meters.
const MOVE_THRESHOLD_M: f64 = 250.0;
/// Upper bound for offset-scale bisection, meters.
const MAX_SCALE_M: f64 = 200_000.0;

/// The generator's output.
#[derive(Debug, Clone)]
pub struct GeneratedEcosystem {
    /// The full license corpus, queryable through [`hft_uls::UlsPortal`].
    pub db: UlsDatabase,
    /// Names of the explicitly modeled networks (incl. the defunct one).
    pub modeled: Vec<String>,
    /// Names of the networks connected CME↔NY4 as of 2020-04-01.
    pub connected_2020: Vec<String>,
}

impl GeneratedEcosystem {
    /// Open an [`AnalysisSession`] over this corpus — the shared entry
    /// point for all downstream analysis (tables, figures, trajectories).
    pub fn session(&self) -> AnalysisSession<'_> {
        AnalysisSession::new(&self.db)
    }
}

/// A tower whose position may change over time (each change re-files the
/// licenses of its incident links).
#[derive(Debug, Clone)]
struct TowerRec {
    /// `(effective_from, position)`, ascending; first entry is creation.
    timeline: Vec<(Date, LatLon)>,
}

impl TowerRec {
    fn fixed(p: LatLon) -> TowerRec {
        TowerRec {
            timeline: vec![(Date::MIN, p)],
        }
    }

    fn position_at(&self, date: Date) -> LatLon {
        let mut pos = self.timeline[0].1;
        for &(d, p) in &self.timeline {
            if d <= date {
                pos = p;
            } else {
                break;
            }
        }
        pos
    }

    /// Move dates strictly inside `(from, to_open)`.
    fn moves_between(&self, from: Date, to_open: Option<Date>) -> Vec<Date> {
        self.timeline[1..]
            .iter()
            .map(|&(d, _)| d)
            .filter(|&d| d > from && to_open.is_none_or(|t| d < t))
            .collect()
    }
}

/// A planned physical link between two registry towers.
#[derive(Debug, Clone)]
struct LinkPlan {
    a: usize,
    b: usize,
    online: Date,
    offline: Option<Date>,
    freq_hz: Vec<f64>,
}

/// Per-network builder state.
struct NetBuilder {
    towers: Vec<TowerRec>,
    links: Vec<LinkPlan>,
}

impl NetBuilder {
    fn new() -> NetBuilder {
        NetBuilder {
            towers: Vec::new(),
            links: Vec::new(),
        }
    }

    fn add_tower(&mut self, rec: TowerRec) -> usize {
        self.towers.push(rec);
        self.towers.len() - 1
    }

    fn add_link(&mut self, link: LinkPlan) {
        assert_ne!(link.a, link.b, "self-link");
        self.links.push(link);
    }

    /// Emit licenses: one per (link, endpoint-stability epoch).
    fn emit<R: Rng + ?Sized>(
        &self,
        licensee: &str,
        ids: &mut IdAllocator,
        rng: &mut R,
    ) -> Vec<License> {
        let mut out = Vec::new();
        for link in &self.links {
            let mut boundaries = vec![link.online];
            boundaries.extend(self.towers[link.a].moves_between(link.online, link.offline));
            boundaries.extend(self.towers[link.b].moves_between(link.online, link.offline));
            boundaries.sort_unstable();
            boundaries.dedup();
            for (i, &start) in boundaries.iter().enumerate() {
                let end = boundaries.get(i + 1).copied().or(link.offline);
                let (id, call_sign) = ids.next_id();
                let tx_pos = self.towers[link.a].position_at(start);
                let rx_pos = self.towers[link.b].position_at(start);
                out.push(License {
                    id,
                    call_sign,
                    licensee: licensee.to_string(),
                    service: RadioService::MG,
                    station_class: StationClass::FXO,
                    grant_date: start,
                    termination_date: Some(start.add_days(15 * 365)),
                    cancellation_date: end,
                    paths: vec![MicrowavePath {
                        tx: tower_site(rng, tx_pos),
                        rx: tower_site(rng, rx_pos),
                        frequencies: link
                            .freq_hz
                            .iter()
                            .map(|&hz| FrequencyAssignment { center_hz: hz })
                            .collect(),
                    }],
                });
            }
        }
        out
    }
}

fn tower_site<R: Rng + ?Sized>(rng: &mut R, p: LatLon) -> TowerSite {
    TowerSite {
        position: p,
        ground_elevation_m: 170.0 + rng.gen::<f64>() * 200.0,
        structure_height_m: 70.0 + rng.gen::<f64>() * 110.0,
    }
}

/// Materialize offsets: each tower adopts `unit·scale` only when it
/// differs from its current offset by more than `threshold`.
fn materialize(unit: &[f64], current: &[f64], scale: f64, threshold: f64) -> Vec<f64> {
    unit.iter()
        .zip(current)
        .map(|(&u, &c)| {
            let proposed = u * scale;
            if (proposed - c).abs() > threshold {
                proposed
            } else {
                c
            }
        })
        .collect()
}

/// One movable chain (trunk or NY4 spur) during era processing.
struct MovableChain {
    start: LatLon,
    end: LatLon,
    geometry: ChainGeometry,
    /// Constant per-tower lateral bias in meters, added on top of the
    /// calibrated offsets (used to steer a spur's final approach).
    bias_m: Vec<f64>,
    /// Offset history: `(era_date, offsets_m)`, ascending.
    history: Vec<(Date, Vec<f64>)>,
}

impl MovableChain {
    fn new(start: LatLon, end: LatLon, geometry: ChainGeometry) -> MovableChain {
        let bias_m = vec![0.0; geometry.len()];
        MovableChain {
            start,
            end,
            geometry,
            bias_m,
            history: Vec::new(),
        }
    }

    fn biased(&self, offsets: &[f64]) -> Vec<f64> {
        offsets
            .iter()
            .zip(&self.bias_m)
            .map(|(o, b)| o + b)
            .collect()
    }

    fn current_offsets(&self) -> Vec<f64> {
        self.history
            .last()
            .map(|(_, o)| o.clone())
            .unwrap_or_else(|| vec![0.0; self.geometry.len()])
    }

    fn length_with(&self, offsets: &[f64]) -> f64 {
        polyline_length_m(&self.positions_with(offsets))
    }

    fn offsets_at(&self, date: Date) -> Vec<f64> {
        let mut out = self
            .history
            .first()
            .map(|(_, o)| o.clone())
            .unwrap_or_else(|| vec![0.0; self.geometry.len()]);
        for (d, o) in &self.history {
            if *d <= date {
                out = o.clone();
            }
        }
        out
    }

    fn positions_with(&self, offsets: &[f64]) -> Vec<LatLon> {
        place_chain_with_offsets(
            &self.start,
            &self.end,
            &self.geometry.ts,
            &self.biased(offsets),
        )
    }
}

/// Bisect the spur's offset scale so its materialized length hits
/// `target_len_m`. Returns the materialized offsets.
fn calibrate_chain(
    chain: &MovableChain,
    target_len_m: f64,
    threshold: f64,
    scale_hi: f64,
) -> Vec<f64> {
    let cur = chain.current_offsets();
    let len_at = |scale: f64| {
        let o = materialize(&chain.geometry.unit_offsets, &cur, scale, threshold);
        chain.length_with(&o)
    };
    let min_len = len_at(0.0);
    assert!(
        target_len_m >= min_len - 1.0,
        "latency target below the geometric floor: want {target_len_m}, floor {min_len}"
    );
    let (mut lo, mut hi) = (0.0f64, scale_hi);
    assert!(
        len_at(hi) >= target_len_m,
        "scale ceiling too small for target"
    );
    for _ in 0..70 {
        let mid = (lo + hi) / 2.0;
        if len_at(mid) < target_len_m {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    materialize(
        &chain.geometry.unit_offsets,
        &cur,
        (lo + hi) / 2.0,
        threshold,
    )
}

/// Microwave path length (meters) that realizes `latency_ms` once the
/// fiber tails (`tail_m` total, at 2c/3) are paid.
fn target_mw_length_m(latency_ms: f64, tail_m: f64) -> f64 {
    let total_s = latency_ms / 1e3;
    let fiber_s = tail_m / Medium::Fiber.speed_m_per_s();
    (total_s - fiber_s) * Medium::Air.speed_m_per_s()
}

/// A throwaway network assembled from explicit tower positions and links,
/// used to *measure* candidate geometries with the real analysis code
/// during calibration (the closed loop).
struct ProbeNet {
    positions: Vec<LatLon>,
    links: Vec<(usize, usize)>,
}

impl ProbeNet {
    fn new() -> ProbeNet {
        ProbeNet {
            positions: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Add a chain of towers; consecutive towers are linked. Returns the
    /// tower ids in order.
    fn add_chain(&mut self, pts: &[LatLon]) -> Vec<usize> {
        let base = self.positions.len();
        self.positions.extend_from_slice(pts);
        for i in 0..pts.len().saturating_sub(1) {
            self.links.push((base + i, base + i + 1));
        }
        (base..base + pts.len()).collect()
    }

    /// Add a chain anchored at existing towers `from` and `to`, with
    /// `interior` new towers between them.
    fn add_chain_between(&mut self, from: usize, interior: &[LatLon], to: usize) -> Vec<usize> {
        let base = self.positions.len();
        self.positions.extend_from_slice(interior);
        let mut ids = vec![from];
        ids.extend(base..base + interior.len());
        ids.push(to);
        for w in ids.windows(2) {
            self.links.push((w[0], w[1]));
        }
        ids
    }

    /// Exact identity of this assembly's geometry (position bits and link
    /// endpoints), keying a [`RouteMemo`]. Bisection converges onto a
    /// shrinking set of scales, so the tail of each calibration probes
    /// bit-identical assemblies repeatedly; only *exact* matches may share
    /// a measurement, or calibration results would drift.
    fn fingerprint(&self) -> u64 {
        fingerprint_words(
            self.positions
                .iter()
                .flat_map(|p| [p.lat_deg().to_bits(), p.lon_deg().to_bits()])
                .chain(
                    self.links
                        .iter()
                        .map(|&(u, v)| ((u as u64) << 32) ^ v as u64),
                ),
        )
    }

    /// Route latency (ms) between two data centers over this assembly,
    /// measured by the real `hft-core` router.
    fn latency_ms(&self, a: &hft_core::DataCenter, b: &hft_core::DataCenter) -> Option<f64> {
        use hft_core::network::{MwLink, Network, Tower};
        use hft_geodesy::SnapGrid;
        let snap = SnapGrid::arc_second();
        let mut graph = hft_netgraph::Graph::new();
        for p in &self.positions {
            graph.add_node(Tower {
                position: *p,
                cell: snap.snap(p),
                ground_elevation_m: 230.0,
                structure_height_m: 100.0,
            });
        }
        for &(u, v) in &self.links {
            let nu = hft_netgraph::NodeId::from_index(u);
            let nv = hft_netgraph::NodeId::from_index(v);
            let length_m = graph
                .node(nu)
                .position
                .geodesic_distance_m(&graph.node(nv).position);
            graph.add_edge(
                nu,
                nv,
                MwLink {
                    length_m,
                    frequencies_ghz: vec![11.2],
                    licenses: vec![],
                },
            );
        }
        let net = Network {
            licensee: "probe".into(),
            as_of: Date::new(2020, 4, 1).expect("static date"),
            graph,
        };
        hft_core::route(&net, a, b).map(|r| r.latency_ms)
    }
}

/// Bisect `scale` until `measure(scale)` hits `target_ms` (monotone
/// non-decreasing in scale). Panics when the target is below the
/// scale-zero floor or above the ceiling's reach.
fn bisect_scale(what: &str, target_ms: f64, mut measure: impl FnMut(f64) -> f64) -> f64 {
    let floor = measure(0.0);
    assert!(
        target_ms >= floor - 1e-6,
        "{what}: target {target_ms} ms below geometric floor {floor} ms"
    );
    let mut hi = MAX_SCALE_M;
    assert!(
        measure(hi) >= target_ms,
        "{what}: target {target_ms} ms beyond scale ceiling"
    );
    let mut lo = 0.0;
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if measure(mid) < target_ms {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

/// Where a redundancy rail attaches and runs.
struct RailPlan {
    /// Interior rail-tower positions.
    interior: Vec<LatLon>,
    /// Index of the first covered tower within the parent chain.
    lo: usize,
    /// Index of the last covered tower within the parent chain.
    hi: usize,
}

/// Build the rail covering parent towers `lo..=hi`: interior towers
/// sampled along the parent polyline at the rail hop spacing, laterally
/// offset so the rail parallels (and slightly exceeds) the parent.
fn plan_rail(parent: &[LatLon], lo: usize, hi: usize, hop_km: f64) -> RailPlan {
    let run = &parent[lo..=hi];
    let mut interior = sample_along(run, hop_km * 1000.0, RAIL_OFFSET_M);
    if interior.is_empty() {
        // Short run: a single offset midpoint still provides a bypass.
        let mid = gc_interpolate(&run[0], run.last().expect("run non-empty"), 0.5);
        let bearing = gc_initial_bearing_deg(&run[0], run.last().expect("run non-empty"));
        interior = vec![gc_destination(&mid, bearing + 90.0, RAIL_OFFSET_M)];
    }
    RailPlan { interior, lo, hi }
}

/// Build one modeled network's licenses.
fn build_network(spec: &NetworkSpec, ids: &mut IdAllocator, seed: u64) -> Vec<License> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let cme = CME.position();
    let ny4 = EQUINIX_NY4.position();

    // ---- Skeleton anchors. ----
    let tail_m = spec.tail_km * 1000.0;
    let d_w = tail_m / 2.0;
    let d_e = tail_m / 2.0;
    let west = gc_destination(&cme, gc_initial_bearing_deg(&cme, &ny4), d_w);
    let branch = gc_interpolate(&cme, &ny4, BRANCH_FRAC);
    let east4 = gc_destination(&ny4, gc_initial_bearing_deg(&ny4, &branch), d_e);

    let route_links = spec.ny4_route_towers - 1;
    let trunk_towers = ((spec.ny4_route_towers as f64) * BRANCH_FRAC)
        .round()
        .max(3.0) as usize;
    let trunk_links = trunk_towers - 1;
    let spur4_links = route_links - trunk_links;

    // The trunk is fixed and essentially straight; every era's latency
    // adjustment happens on the spurs' offsets.
    let trunk_geom = make_chain_geometry(trunk_towers - 2, &mut rng);
    let trunk_offsets: Vec<f64> = trunk_geom
        .unit_offsets
        .iter()
        .map(|u| u * TRUNK_SCALE_M)
        .collect();
    let trunk_positions_all =
        place_chain_with_offsets(&west, &branch, &trunk_geom.ts, &trunk_offsets);
    let trunk_len = polyline_length_m(&trunk_positions_all);

    let spur4_geom = make_chain_geometry(spur4_links - 1, &mut rng);
    let mut spur4 = MovableChain::new(branch, east4, spur4_geom);
    // Bias the final approach south of the direct line: positive offsets
    // point south here, and without this the spur's last towers sit inside
    // NYSE's 50 km fiber circle, letting a network's NY4 route double as a
    // shortcut to NYSE that caps its NYSE latency below the intended value
    // (the Webline Holdings case: its NYSE path is >100 µs slower than a
    // hop off its NY4 route would be). The bias is absolute (meters) so
    // big-wiggle networks are not pushed so far south that their own NY4
    // route starts skipping the final towers.
    if let Some(n) = spur4.bias_m.len().checked_sub(1) {
        spur4.bias_m[n] = 6_500.0;
        if n >= 1 {
            spur4.bias_m[n - 1] = 4_000.0;
        }
    }

    // ---- Era calibration for all but the final era (polyline metric is
    // exact there: rails come online near the end of the story and are
    // handicapped, and tolerances before the 2020 snapshot are µs-scale).
    assert!(
        !spec.eras.is_empty(),
        "{}: connected networks need eras",
        spec.name
    );
    let last_era = spec.eras.len() - 1;
    for era in &spec.eras[..last_era] {
        let target = target_mw_length_m(era.ny4_latency_ms, tail_m) - trunk_len;
        let os = calibrate_chain(&spur4, target, MOVE_THRESHOLD_M, MAX_SCALE_M);
        spur4.history.push((era.date, os));
    }

    // ---- NYSE / NASDAQ spur geometry (tower counts fixed up front so
    // rail coverage arithmetic can run before calibration).
    struct SpurPlan {
        dc: &'static hft_core::DataCenter,
        east: LatLon,
        geom: ChainGeometry,
        n_links: usize,
        target_ms: f64,
        covered: usize,
        positions: Vec<LatLon>, // filled by calibration
        rail: Option<RailPlan>, // filled by calibration
    }
    let mut spurs: Vec<SpurPlan> = Vec::new();
    for (target, dc) in [
        (spec.final_latency.and_then(|f| f.nyse), &NYSE),
        (spec.final_latency.and_then(|f| f.nasdaq), &NASDAQ),
    ] {
        let Some(target_ms) = target else { continue };
        let east = gc_destination(
            &dc.position(),
            gc_initial_bearing_deg(&dc.position(), &branch),
            d_e,
        );
        let dist_ratio = gc_distance_m(&branch, &east) / gc_distance_m(&branch, &east4);
        let n_links = ((spur4_links as f64) * dist_ratio).round().max(2.0) as usize;
        let geom = make_chain_geometry(n_links - 1, &mut rng);
        spurs.push(SpurPlan {
            dc,
            east,
            geom,
            n_links,
            target_ms,
            covered: 0,
            positions: Vec::new(),
            rail: None,
        });
    }

    // ---- Rail coverage arithmetic (from the APA targets). ----
    let mut c_trunk = 0usize;
    let mut c_spur4 = 0usize;
    if spec.rails_online.is_some() {
        let needed4 = (spec.apa.ny4 * route_links as f64).round() as usize;
        let mut needed_all = vec![needed4];
        let apa_for = |dc: &hft_core::DataCenter| {
            if dc.code == NYSE.code {
                spec.apa.nyse
            } else {
                spec.apa.nasdaq
            }
        };
        for s in &spurs {
            needed_all.push((apa_for(s.dc) * (trunk_links + s.n_links) as f64).round() as usize);
        }
        c_trunk = needed_all
            .iter()
            .copied()
            .min()
            .unwrap_or(0)
            .min(trunk_links);
        c_spur4 = needed4.saturating_sub(c_trunk).min(spur4_links);
        for (i, s) in spurs.iter_mut().enumerate() {
            s.covered = needed_all[i + 1].saturating_sub(c_trunk).min(s.n_links);
        }
    }
    let trunk_rail = (c_trunk > 0).then(|| {
        plan_rail(
            &trunk_positions_all,
            trunk_links - c_trunk,
            trunk_links,
            spec.rail_hop_km,
        )
    });

    // Probe assembly shared by the closed-loop calibrations: the straight
    // trunk plus its rail.
    let probe_base = |pn: &mut ProbeNet| -> Vec<usize> {
        let trunk_ids = pn.add_chain(&trunk_positions_all);
        if let Some(rail) = &trunk_rail {
            pn.add_chain_between(trunk_ids[rail.lo], &rail.interior, trunk_ids[rail.hi]);
        }
        trunk_ids
    };

    // ---- Closed-loop calibration: NYSE/NASDAQ spurs. ----
    for s in &mut spurs {
        let mut memo = RouteMemo::new();
        let measure = |scale: f64| -> f64 {
            let offsets: Vec<f64> = s.geom.unit_offsets.iter().map(|u| u * scale).collect();
            let pts = place_chain_with_offsets(&branch, &s.east, &s.geom.ts, &offsets);
            let mut pn = ProbeNet::new();
            let trunk_ids = probe_base(&mut pn);
            // Spur chain: anchored at the branch (last trunk tower), new
            // towers for the rest.
            let base = pn.positions.len();
            pn.positions.extend_from_slice(&pts[1..]);
            let mut ids_chain = vec![*trunk_ids.last().expect("trunk non-empty")];
            ids_chain.extend(base..base + pts.len() - 1);
            for w in ids_chain.windows(2) {
                pn.links.push((w[0], w[1]));
            }
            if s.covered > 0 {
                let rail = plan_rail(&pts, 0, s.covered, spec.rail_hop_km);
                pn.add_chain_between(ids_chain[rail.lo], &rail.interior, ids_chain[rail.hi]);
            }
            memo.latency_ms(pn.fingerprint(), || pn.latency_ms(&CME, s.dc))
                .expect("probe network is connected")
        };
        let scale = bisect_scale(
            &format!("{} {}", spec.name, s.dc.code),
            s.target_ms,
            measure,
        );
        let offsets: Vec<f64> = s.geom.unit_offsets.iter().map(|u| u * scale).collect();
        s.positions = place_chain_with_offsets(&branch, &s.east, &s.geom.ts, &offsets);
        s.rail = (s.covered > 0).then(|| plan_rail(&s.positions, 0, s.covered, spec.rail_hop_km));
    }

    // ---- Closed-loop calibration: final era of the NY4 spur. ----
    // The spur-4 rail follows the parent as it stood when the rails came
    // online; when that predates the final era the rail geometry is fixed
    // history, otherwise it tracks the probe.
    let rails_online = spec.rails_online;
    let rail4_static: Option<RailPlan> = match rails_online {
        Some(online) if c_spur4 > 0 && !spur4.history.is_empty() => {
            let offs = spur4.offsets_at(online);
            let pts = spur4.positions_with(&offs);
            Some(plan_rail(&pts, 0, c_spur4, spec.rail_hop_km))
        }
        _ => None,
    };
    {
        let final_target = spec.eras[last_era].ny4_latency_ms;
        let cur = spur4.current_offsets();
        let mut memo = RouteMemo::new();
        let measure = |scale: f64| -> f64 {
            let offsets = materialize(&spur4.geometry.unit_offsets, &cur, scale, 0.0);
            let pts = spur4.positions_with(&offsets);
            let mut pn = ProbeNet::new();
            let trunk_ids = probe_base(&mut pn);
            let base = pn.positions.len();
            pn.positions.extend_from_slice(&pts[1..]);
            let mut ids_chain = vec![*trunk_ids.last().expect("trunk non-empty")];
            ids_chain.extend(base..base + pts.len() - 1);
            for w in ids_chain.windows(2) {
                pn.links.push((w[0], w[1]));
            }
            match (&rail4_static, c_spur4 > 0) {
                (Some(rail), _) => {
                    pn.add_chain_between(ids_chain[rail.lo], &rail.interior, ids_chain[rail.hi]);
                }
                (None, true) => {
                    let rail = plan_rail(&pts, 0, c_spur4, spec.rail_hop_km);
                    pn.add_chain_between(ids_chain[rail.lo], &rail.interior, ids_chain[rail.hi]);
                }
                (None, false) => {}
            }
            memo.latency_ms(pn.fingerprint(), || pn.latency_ms(&CME, &EQUINIX_NY4))
                .expect("probe network is connected")
        };
        let scale = bisect_scale(&format!("{} NY4 final", spec.name), final_target, measure);
        let offsets = materialize(&spur4.geometry.unit_offsets, &cur, scale, 0.0);
        spur4.history.push((spec.eras[last_era].date, offsets));
    }
    let spur4_final_positions = spur4.positions_with(&spur4.history[last_era].1);
    let rail4: Option<RailPlan> = match rail4_static {
        Some(r) => Some(r),
        None if c_spur4 > 0 => Some(plan_rail(
            &spur4_final_positions,
            0,
            c_spur4,
            spec.rail_hop_km,
        )),
        None => None,
    };

    // ---- Registry: trunk (fixed) + spur4 towers with move timelines. ----
    let era0 = spec.eras[0].date;
    let mut nb = NetBuilder::new();
    let jittered_timeline = |chain: &MovableChain, j: usize, rng: &mut ChaCha8Rng| -> TowerRec {
        let mut timeline = vec![(Date::MIN, chain.positions_with(&chain.history[0].1)[j + 1])];
        for w in 0..chain.history.len() - 1 {
            let (prev_date, _) = chain.history[w];
            let (next_date, ref next_off) = chain.history[w + 1];
            let (_, ref prev_off) = chain.history[w];
            if (next_off[j] - prev_off[j]).abs() > 1e-9 {
                // Move materialized in era w+1: pick a date inside the window.
                let window = (next_date - prev_date - 1).max(1);
                let move_date =
                    prev_date.add_days(1 + (rng.gen::<f64>() * (window - 1).max(1) as f64) as i64);
                timeline.push((move_date, chain.positions_with(next_off)[j + 1]));
            }
        }
        TowerRec { timeline }
    };

    let mut trunk_ids = Vec::with_capacity(trunk_towers);
    for p in &trunk_positions_all[..trunk_positions_all.len() - 1] {
        trunk_ids.push(nb.add_tower(TowerRec::fixed(*p)));
    }
    let branch_id = nb.add_tower(TowerRec::fixed(branch));
    trunk_ids.push(branch_id);

    let mut spur4_ids = vec![branch_id];
    for j in 0..spur4.geometry.len() {
        let rec = jittered_timeline(&spur4, j, &mut rng);
        spur4_ids.push(nb.add_tower(rec));
    }
    spur4_ids.push(nb.add_tower(TowerRec::fixed(east4)));

    // ---- Route links with ramped online dates and frequencies. ----
    let ramp_end = era0.add_days(-5);
    let ramp_days = (ramp_end - spec.first_grant).max(1);
    let primary_plan = BandPlan::new(spec.primary_band);
    let route_channels = primary_plan.assign_chain(route_links);
    let offband_idx = (spec.primary_band == Band::L6GHz && spur4_links > 6)
        .then(|| trunk_links + spur4_links / 2);
    let offband_plan = BandPlan::new(Band::B11GHz);
    let push_route_link =
        |nb: &mut NetBuilder, i: usize, a: usize, b: usize, rng: &mut ChaCha8Rng| {
            let online = spec
                .first_grant
                .add_days((i as i64 * ramp_days) / route_links as i64)
                .add_days((rng.gen::<f64>() * 3.0) as i64);
            let mut freqs = vec![route_channels[i].center_hz];
            if Some(i) == offband_idx {
                freqs = vec![offband_plan.channel(3).center_hz];
            } else if rng.gen::<f64>() < 0.3 {
                // Some links get a second authorized channel.
                freqs.push(primary_plan.channel(route_channels[i].index + 5).center_hz);
            }
            nb.add_link(LinkPlan {
                a,
                b,
                online: online.min(ramp_end),
                offline: None,
                freq_hz: freqs,
            });
        };
    for (i, w) in trunk_ids.windows(2).enumerate() {
        push_route_link(&mut nb, i, w[0], w[1], &mut rng);
    }
    for (i, w) in spur4_ids.windows(2).enumerate() {
        push_route_link(&mut nb, trunk_links + i, w[0], w[1], &mut rng);
    }

    // ---- NYSE / NASDAQ spur registry + links. ----
    let mut spur_chain_ids: Vec<Vec<usize>> = Vec::new();
    for s in &spurs {
        let mut ids_chain = vec![branch_id];
        for p in &s.positions[1..] {
            ids_chain.push(nb.add_tower(TowerRec::fixed(*p)));
        }
        let channels = primary_plan.assign_chain(s.n_links);
        for (i, w) in ids_chain.windows(2).enumerate() {
            let online = era0.add_days(14 + (i as i64 * 9) + (rng.gen::<f64>() * 5.0) as i64);
            nb.add_link(LinkPlan {
                a: w[0],
                b: w[1],
                online,
                offline: None,
                freq_hz: vec![channels[i].center_hz],
            });
        }
        spur_chain_ids.push(ids_chain);
    }

    // ---- Rails registry + links. ----
    if let Some(online) = rails_online {
        let rail_plan_band = BandPlan::new(spec.rail_band);
        let add_rail =
            |nb: &mut NetBuilder, rail: &RailPlan, parent_ids: &[usize], rng: &mut ChaCha8Rng| {
                let mut chain_ids = vec![parent_ids[rail.lo]];
                for p in &rail.interior {
                    chain_ids.push(nb.add_tower(TowerRec::fixed(*p)));
                }
                chain_ids.push(parent_ids[rail.hi]);
                for (i, w) in chain_ids.windows(2).enumerate() {
                    let use_rail_band =
                        ((i * 37 + 11) % 100) as f64 / 100.0 < spec.rail_band_fraction;
                    let chan = if use_rail_band {
                        rail_plan_band.channel(i)
                    } else {
                        primary_plan.channel(i + 7)
                    };
                    // Rails build out over ~2 years, not weeks: the Fig-2
                    // license curves should climb through the redundancy era.
                    let link_online =
                        online.add_days((i as i64 * 12) + (rng.gen::<f64>() * 7.0) as i64);
                    nb.add_link(LinkPlan {
                        a: w[0],
                        b: w[1],
                        online: link_online,
                        offline: None,
                        freq_hz: vec![chan.center_hz],
                    });
                }
            };
        if let Some(rail) = &trunk_rail {
            add_rail(&mut nb, rail, &trunk_ids, &mut rng);
        }
        if let Some(rail) = &rail4 {
            add_rail(&mut nb, rail, &spur4_ids, &mut rng);
        }
        for (s, ids_chain) in spurs.iter().zip(&spur_chain_ids) {
            if let Some(rail) = &s.rail {
                add_rail(&mut nb, rail, ids_chain, &mut rng);
            }
        }
    }

    // ---- Emit core licenses. ----
    let mut licenses = nb.emit(&spec.name, ids, &mut rng);

    // ---- Spares to satisfy the Fig.-2 anchors. ----
    // `licenses` accumulates spares as we go, so counting active licenses
    // at each anchor date sees both the core network and earlier spares.
    let mut prev_anchor = spec.first_grant;
    let mut open_spares: Vec<usize> = Vec::new(); // spare indexes into `licenses`
    for anchor in &spec.license_anchors {
        let total_now = licenses.iter().filter(|l| l.active_on(anchor.date)).count();
        let want = anchor.count;
        if want > total_now {
            let add = want - total_now;
            let window = (anchor.date - prev_anchor - 1).max(1);
            for k in 0..add {
                let grant = prev_anchor
                    .add_days(1 + ((k as i64 * window) / add as i64))
                    .min(anchor.date.add_days(-1))
                    .max(spec.first_grant);
                let t = 0.05 + rng.gen::<f64>() * 0.9;
                let lateral = 15_000.0 + rng.gen::<f64>() * 25_000.0;
                let side = if rng.gen::<f64>() < 0.5 { 90.0 } else { -90.0 };
                let on_line = gc_interpolate(&cme, &ny4, t);
                let bearing = gc_initial_bearing_deg(&on_line, &ny4);
                let p1 = gc_destination(&on_line, bearing + side, lateral);
                let p2 = gc_destination(
                    &p1,
                    bearing + side * 0.2,
                    6_000.0 + rng.gen::<f64>() * 9_000.0,
                );
                let (id, call_sign) = ids.next_id();
                licenses.push(License {
                    id,
                    call_sign,
                    licensee: spec.name.clone(),
                    service: RadioService::MG,
                    station_class: StationClass::FXO,
                    grant_date: grant,
                    termination_date: Some(grant.add_days(15 * 365)),
                    cancellation_date: None,
                    paths: vec![MicrowavePath {
                        tx: tower_site(&mut rng, p1),
                        rx: tower_site(&mut rng, p2),
                        frequencies: vec![FrequencyAssignment {
                            center_hz: BandPlan::new(spec.rail_band).channel(k).center_hz,
                        }],
                    }],
                });
                open_spares.push(licenses.len() - 1);
            }
        } else if want < total_now {
            // Cancel excess spares (never core) inside the window.
            let mut excess = total_now - want;
            let window = (anchor.date - prev_anchor - 1).max(1);
            let mut k = 0i64;
            open_spares.retain(|&i| {
                if excess > 0 && licenses[i].cancellation_date.is_none() {
                    let cancel = prev_anchor.add_days(1 + (k * 13) % window);
                    licenses[i].cancellation_date = Some(cancel.min(anchor.date.add_days(-1)));
                    excess -= 1;
                    k += 1;
                    false
                } else {
                    true
                }
            });
        }
        prev_anchor = anchor.date;
    }

    // ---- Shutdown (National Tower Company). ----
    if let Some(shutdown) = spec.shutdown {
        let window1_start = shutdown.add_days(-196);
        let year_end = Date::new(shutdown.year(), 12, 20).expect("valid");
        let window2_start = Date::new(shutdown.year() + 1, 1, 15).expect("valid");
        let mut k = 0u64;
        for lic in &mut licenses {
            let dies_later = lic.cancellation_date.is_none_or(|c| c > window1_start);
            if !dies_later {
                continue;
            }
            // ~74% of the survivors fall in the shutdown year, the rest
            // the year after — Fig. 2's "cancelled 71 licenses in 2017
            // and 2018".
            let in_first = (k * 61) % 100 < 74;
            let cancel = if in_first {
                let span = (year_end - window1_start).max(1);
                window1_start.add_days(((k * 37) % span as u64) as i64)
            } else {
                window2_start.add_days(((k * 29) % 230) as i64)
            };
            lic.cancellation_date = Some(cancel.max(lic.grant_date.succ()));
            k += 1;
        }
    }

    licenses
}

/// Names used by the hidden split-entity network (§2.4): one physical
/// CME→NY4 chain filed as a western and an eastern shell licensee that
/// share exactly one mid-corridor tower.
pub const SPLIT_ENTITY_NAMES: (&str, &str) =
    ("Lakefront Route Holdings", "Seaboard Route Holdings");

/// Build one split-entity network: a complete corridor chain whose links
/// are filed under two shells in *alternation* (odd hops under one name,
/// even hops under the other), so neither shell alone forms a single
/// usable hop sequence while the merged filings form a ~3.99 ms path.
/// Both shells hold licenses near CME, so both survive the paper's
/// geographic funnel — exactly the §2.4 blind spot.
fn build_split_entity(ids: &mut IdAllocator, seed: u64) -> Vec<License> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let cme = CME.position();
    let ny4 = EQUINIX_NY4.position();
    let d_tail = 2_500.0;
    let west_anchor = gc_destination(&cme, gc_initial_bearing_deg(&cme, &ny4), d_tail);
    let east_anchor = gc_destination(&ny4, gc_initial_bearing_deg(&ny4, &cme), d_tail);
    let geometry = make_chain_geometry(24, &mut rng);
    let mut points = place_chain_with_offsets(
        &west_anchor,
        &east_anchor,
        &geometry.ts,
        &geometry
            .unit_offsets
            .iter()
            .map(|u| u * 7_000.0)
            .collect::<Vec<_>>(),
    );
    // A short first hop puts one license of EACH shell inside the 10 km
    // geographic-search circle around CME (the alternation starts here).
    points.insert(
        1,
        gc_destination(
            &west_anchor,
            gc_initial_bearing_deg(&west_anchor, &ny4),
            5_500.0,
        ),
    );
    let plan = BandPlan::new(Band::B11GHz);
    let channels = plan.assign_chain(points.len() - 1);
    let grant_base = Date::new(2017, 3, 10).expect("static");
    let mut out = Vec::new();
    for (i, w) in points.windows(2).enumerate() {
        let licensee = if i % 2 == 0 {
            SPLIT_ENTITY_NAMES.0
        } else {
            SPLIT_ENTITY_NAMES.1
        };
        let (id, call_sign) = ids.next_id();
        out.push(License {
            id,
            call_sign,
            licensee: licensee.to_string(),
            service: RadioService::MG,
            station_class: StationClass::FXO,
            grant_date: grant_base.add_days(i as i64 * 11),
            termination_date: Some(grant_base.add_days(15 * 365)),
            cancellation_date: None,
            paths: vec![MicrowavePath {
                tx: tower_site(&mut rng, w[0]),
                rx: tower_site(&mut rng, w[1]),
                frequencies: vec![FrequencyAssignment {
                    center_hz: channels[i].center_hz,
                }],
            }],
        });
    }
    out
}

/// Generate the full ecosystem from a scenario and a seed. Deterministic:
/// identical inputs produce an identical corpus.
pub fn generate(spec: &ScenarioSpec, seed: u64) -> GeneratedEcosystem {
    let mut ids = IdAllocator::new(10_001);
    // Each generator group bulk-loads through `UlsDatabase::extend`,
    // which defers sorted-name-cache maintenance to the end of the
    // group instead of re-sorting per license.
    let mut db = UlsDatabase::new();
    let mut modeled = Vec::new();
    let mut connected = Vec::new();

    for (i, net) in spec.networks.iter().enumerate() {
        let child_seed = seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
        db.extend(build_network(net, &mut ids, child_seed));
        modeled.push(net.name.clone());
        if net.final_latency.is_some() {
            connected.push(net.name.clone());
        }
    }

    for k in 0..spec.split_entity_pairs {
        db.extend(build_split_entity(
            &mut ids,
            seed ^ (0x5157_1111u64 + k as u64),
        ));
    }

    let cme = CME.position();
    let ny4 = EQUINIX_NY4.position();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD_EF01_2345_6789);
    db.extend(noise::partial_licensees(
        spec.partial_licensees,
        &cme,
        &ny4,
        &mut ids,
        &mut rng,
    ));
    db.extend(noise::small_licensees(
        spec.small_licensees,
        &cme,
        &mut ids,
        &mut rng,
    ));
    db.extend(noise::other_service_licensees(
        spec.other_service_licensees,
        &cme,
        &mut ids,
        &mut rng,
    ));

    GeneratedEcosystem {
        db,
        modeled,
        connected_2020: connected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::chicago_nj;
    use hft_core::corridor;
    use hft_core::{reconstruct, route, ReconstructOptions};
    use hft_uls::UlsPortal;

    fn licenses_of<'a>(db: &'a UlsDatabase, name: &str) -> Vec<&'a License> {
        db.licensee_search(name)
    }

    #[test]
    fn nln_final_latency_matches_table1() {
        let spec = chicago_nj();
        let nln_spec = spec
            .networks
            .iter()
            .find(|n| n.name == "New Line Networks")
            .unwrap();
        let mut ids = IdAllocator::new(1);
        let lics = build_network(nln_spec, &mut ids, 42);
        let refs: Vec<&License> = lics.iter().collect();
        let asof = Date::new(2020, 4, 1).unwrap();
        let net = reconstruct(
            &refs,
            "New Line Networks",
            asof,
            &ReconstructOptions::default(),
        );
        let r = route(&net, &corridor::CME, &corridor::EQUINIX_NY4).expect("connected");
        assert!(
            (r.latency_ms - 3.96171).abs() < 0.0005,
            "calibration missed: got {} want 3.96171",
            r.latency_ms
        );
        assert_eq!(r.towers, 25, "Table 1 tower count");
    }

    #[test]
    fn era_latencies_track_fig1() {
        let spec = chicago_nj();
        let wh_spec = spec
            .networks
            .iter()
            .find(|n| n.name == "Webline Holdings")
            .unwrap();
        let mut ids = IdAllocator::new(1);
        let lics = build_network(wh_spec, &mut ids, 42);
        let refs: Vec<&License> = lics.iter().collect();
        for era in &wh_spec.eras {
            let net = reconstruct(
                &refs,
                "Webline Holdings",
                era.date,
                &ReconstructOptions::default(),
            );
            let r = route(&net, &corridor::CME, &corridor::EQUINIX_NY4)
                .unwrap_or_else(|| panic!("WH must be connected on {}", era.date));
            assert!(
                (r.latency_ms - era.ny4_latency_ms).abs() < 0.004,
                "era {}: got {} want {}",
                era.date,
                r.latency_ms,
                era.ny4_latency_ms
            );
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let spec = chicago_nj();
        let a = generate(&spec, 7);
        let b = generate(&spec, 7);
        assert_eq!(a.db.len(), b.db.len());
        for (x, y) in a.db.licenses().iter().zip(b.db.licenses()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn full_funnel_counts() {
        let eco = generate(&chicago_nj(), 2020);
        let (shortlisted, report) = hft_uls::scrape::run_pipeline(
            &eco.db,
            &corridor::CME.position(),
            &hft_uls::scrape::ScrapeConfig::default(),
        );
        assert_eq!(report.service_filtered, 57, "57 MG/FXO candidates (§2.2)");
        assert_eq!(report.shortlisted, 29, "29 shortlisted (§2.2)");
        assert_eq!(shortlisted.len(), 29);
    }

    #[test]
    fn ntc_vanishes() {
        let eco = generate(&chicago_nj(), 2020);
        let lics = licenses_of(&eco.db, "National Tower Company");
        assert!(!lics.is_empty());
        let d2019 = Date::new(2019, 1, 1).unwrap();
        assert_eq!(
            lics.iter().filter(|l| l.active_on(d2019)).count(),
            0,
            "NTC gone by 2019"
        );
        let d2016 = Date::new(2016, 1, 1).unwrap();
        let active_2016 = lics.iter().filter(|l| l.active_on(d2016)).count();
        assert!(active_2016 > 80, "NTC at its peak in 2016: {active_2016}");
    }
}
