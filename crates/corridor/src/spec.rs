//! Declarative scenario specification, with the Chicago–NJ corridor's
//! calibration targets transcribed from the paper's tables and figures.

use hft_radio::Band;
use hft_time::Date;

/// Latency targets (one-way, milliseconds) for the three corridor paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathTargets {
    /// CME → Equinix NY4.
    pub ny4: f64,
    /// CME → NYSE Mahwah, `None` when the network does not serve NYSE.
    pub nyse: Option<f64>,
    /// CME → NASDAQ Carteret, `None` when the network does not serve it.
    pub nasdaq: Option<f64>,
}

/// APA targets per path (fractions in `[0, 1]`); paths the network does
/// not serve are ignored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApaTargets {
    /// CME → NY4 APA.
    pub ny4: f64,
    /// CME → NYSE APA.
    pub nyse: f64,
    /// CME → NASDAQ APA.
    pub nasdaq: f64,
}

/// One point of a network's historical latency trajectory (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EraTarget {
    /// The era begins (its geometry is in place) strictly before this
    /// date, so reconstruction *on* the date sees it.
    pub date: Date,
    /// CME→NY4 one-way latency target at that date, ms.
    pub ny4_latency_ms: f64,
}

/// An anchor for the active-license-count trajectory (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LicenseAnchor {
    /// Anchor date (the Fig. 2 x-ticks are January 1sts).
    pub date: Date,
    /// Desired active license count on that date.
    pub count: usize,
}

/// Specification of one licensee's network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Licensee name as filed with the FCC.
    pub name: String,
    /// Towers on the CME→NY4 shortest route (Table 1's `#Towers`).
    pub ny4_route_towers: usize,
    /// Combined data-center fiber-tail length (both ends), km.
    pub tail_km: f64,
    /// Final-state latency targets (as of 2020-04-01); `None` when the
    /// network is defunct by then (National Tower Company).
    pub final_latency: Option<PathTargets>,
    /// Final-state APA targets.
    pub apa: ApaTargets,
    /// Primary operating band for route links.
    pub primary_band: Band,
    /// Band used on (part of) the redundant rails.
    pub rail_band: Band,
    /// Fraction of rail links assigned to `rail_band` (the rest use the
    /// primary band) — drives the Fig. 4b "NLN-alternate" series.
    pub rail_band_fraction: f64,
    /// Rail hop length, km (shorter than trunk hops for Webline, which
    /// drags its Fig. 4a median down).
    pub rail_hop_km: f64,
    /// Date the redundancy rails come online (empty APA before that).
    pub rails_online: Option<Date>,
    /// Latency trajectory; first era's date is when the network first has
    /// an end-to-end CME→NY4 path. Must be non-empty for any network that
    /// is ever connected.
    pub eras: Vec<EraTarget>,
    /// Grant date of the network's very first licenses (build-out starts
    /// here; the network may not be end-to-end yet).
    pub first_grant: Date,
    /// Date all licenses are cancelled (National Tower Company), if ever.
    pub shutdown: Option<Date>,
    /// License-count anchors for Fig. 2 (satisfied by issuing spare
    /// licenses above the structural minimum; anchors below the
    /// structural minimum are reported, not forced).
    pub license_anchors: Vec<LicenseAnchor>,
}

/// The full scenario: the corridor's networks plus funnel noise
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The modeled licensees (connected, defunct and partial).
    pub networks: Vec<NetworkSpec>,
    /// Number of partially built corridor licensees (≥ 11 filings but no
    /// end-to-end path) beyond the explicitly modeled networks.
    pub partial_licensees: usize,
    /// Number of hidden split-entity networks: one physical corridor
    /// network filed under *two* shell licensees (west half / east half),
    /// connected only jointly — the §2.4 limitation the entity-resolution
    /// analysis (hft-core::entity) is meant to uncover. Each pair adds two
    /// shortlist entries.
    pub split_entity_pairs: usize,
    /// Number of small MG/FXO licensees near CME (< 11 filings) — the
    /// funnel's 57 − 29 = 28 drop-outs.
    pub small_licensees: usize,
    /// Number of non-MG licensees near CME (filtered by the site search).
    pub other_service_licensees: usize,
}

fn d(y: i32, m: u32, day: u32) -> Date {
    Date::new(y, m, day).expect("static scenario dates are valid")
}

/// The calibrated Chicago–New Jersey scenario: every target number below
/// is transcribed from the paper (Tables 1–3, Figs 1–2) or chosen to be
/// consistent with its narrative where the paper does not pin a value.
#[allow(clippy::vec_init_then_push)] // one push per network keeps the spec readable
pub fn chicago_nj() -> ScenarioSpec {
    let mut networks = Vec::new();

    // ---- New Line Networks: the 2020 champion (Tables 1 & 2). ----
    networks.push(NetworkSpec {
        name: "New Line Networks".into(),
        ny4_route_towers: 25,
        tail_km: 1.35,
        final_latency: Some(PathTargets {
            ny4: 3.96171,
            nyse: Some(3.93209),
            nasdaq: Some(3.92728),
        }),
        apa: ApaTargets {
            ny4: 0.54,
            nyse: 0.58,
            nasdaq: 0.30,
        },
        primary_band: Band::B11GHz,
        rail_band: Band::L6GHz,
        rail_band_fraction: 0.3,
        rail_hop_km: 46.0,
        rails_online: Some(d(2016, 9, 1)),
        eras: vec![
            EraTarget {
                date: d(2016, 1, 1),
                ny4_latency_ms: 3.985,
            },
            EraTarget {
                date: d(2017, 1, 1),
                ny4_latency_ms: 3.975,
            },
            EraTarget {
                date: d(2018, 1, 1),
                ny4_latency_ms: 3.9640,
            },
            EraTarget {
                date: d(2019, 1, 1),
                ny4_latency_ms: 3.9625,
            },
            EraTarget {
                date: d(2020, 4, 1),
                ny4_latency_ms: 3.96171,
            },
        ],
        first_grant: d(2015, 2, 1),
        shutdown: None,
        license_anchors: vec![
            LicenseAnchor {
                date: d(2015, 1, 1),
                count: 0,
            },
            LicenseAnchor {
                date: d(2016, 1, 1),
                count: 95,
            },
            LicenseAnchor {
                date: d(2017, 1, 1),
                count: 125,
            },
            LicenseAnchor {
                date: d(2018, 1, 1),
                count: 150,
            },
            LicenseAnchor {
                date: d(2019, 1, 1),
                count: 155,
            },
            LicenseAnchor {
                date: d(2020, 1, 1),
                count: 155,
            },
        ],
    });

    // ---- Pierce Broadband: the 2020 newcomer, 2nd on CME-NY4. ----
    networks.push(NetworkSpec {
        name: "Pierce Broadband".into(),
        ny4_route_towers: 29,
        tail_km: 1.4,
        final_latency: Some(PathTargets {
            ny4: 3.96209,
            nyse: None,
            nasdaq: None,
        }),
        apa: ApaTargets {
            ny4: 0.07,
            nyse: 0.0,
            nasdaq: 0.0,
        },
        primary_band: Band::B11GHz,
        rail_band: Band::L6GHz,
        rail_band_fraction: 1.0,
        rail_hop_km: 40.0,
        rails_online: Some(d(2020, 2, 20)),
        eras: vec![EraTarget {
            date: d(2020, 4, 1),
            ny4_latency_ms: 3.96209,
        }],
        first_grant: d(2019, 10, 15),
        shutdown: None,
        license_anchors: vec![
            LicenseAnchor {
                date: d(2020, 1, 1),
                count: 30,
            },
            LicenseAnchor {
                date: d(2020, 4, 1),
                count: 36,
            },
        ],
    });

    // ---- Jefferson Microwave: fewest towers, high APA. ----
    networks.push(NetworkSpec {
        name: "Jefferson Microwave".into(),
        ny4_route_towers: 22,
        tail_km: 2.2,
        final_latency: Some(PathTargets {
            ny4: 3.96597,
            nyse: Some(3.94021),
            nasdaq: Some(3.92828),
        }),
        apa: ApaTargets {
            ny4: 0.73,
            nyse: 0.75,
            nasdaq: 0.70,
        },
        primary_band: Band::B11GHz,
        rail_band: Band::L6GHz,
        rail_band_fraction: 0.5,
        rail_hop_km: 45.0,
        rails_online: Some(d(2016, 5, 1)),
        eras: vec![
            EraTarget {
                date: d(2014, 1, 1),
                ny4_latency_ms: 3.995,
            },
            EraTarget {
                date: d(2015, 1, 1),
                ny4_latency_ms: 3.990,
            },
            EraTarget {
                date: d(2016, 1, 1),
                ny4_latency_ms: 3.985,
            },
            EraTarget {
                date: d(2017, 1, 1),
                ny4_latency_ms: 3.980,
            },
            EraTarget {
                date: d(2018, 1, 1),
                ny4_latency_ms: 3.975,
            },
            EraTarget {
                date: d(2019, 1, 1),
                ny4_latency_ms: 3.970,
            },
            EraTarget {
                date: d(2020, 4, 1),
                ny4_latency_ms: 3.96597,
            },
        ],
        first_grant: d(2013, 5, 1),
        shutdown: None,
        license_anchors: vec![
            LicenseAnchor {
                date: d(2014, 1, 1),
                count: 62,
            },
            LicenseAnchor {
                date: d(2016, 1, 1),
                count: 85,
            },
            LicenseAnchor {
                date: d(2018, 1, 1),
                count: 102,
            },
            LicenseAnchor {
                date: d(2020, 1, 1),
                count: 112,
            },
        ],
    });

    // ---- Blueline Comm: solid chain, no redundancy. ----
    networks.push(NetworkSpec {
        name: "Blueline Comm".into(),
        ny4_route_towers: 29,
        tail_km: 2.6,
        final_latency: Some(PathTargets {
            ny4: 3.96940,
            nyse: Some(3.95866),
            nasdaq: Some(3.94500),
        }),
        apa: ApaTargets {
            ny4: 0.0,
            nyse: 0.0,
            nasdaq: 0.0,
        },
        primary_band: Band::B11GHz,
        rail_band: Band::B11GHz,
        rail_band_fraction: 0.0,
        rail_hop_km: 45.0,
        rails_online: None,
        eras: vec![
            EraTarget {
                date: d(2015, 1, 1),
                ny4_latency_ms: 3.998,
            },
            EraTarget {
                date: d(2017, 1, 1),
                ny4_latency_ms: 3.985,
            },
            EraTarget {
                date: d(2019, 1, 1),
                ny4_latency_ms: 3.975,
            },
            EraTarget {
                date: d(2020, 4, 1),
                ny4_latency_ms: 3.96940,
            },
        ],
        first_grant: d(2014, 3, 1),
        shutdown: None,
        license_anchors: vec![
            LicenseAnchor {
                date: d(2016, 1, 1),
                count: 80,
            },
            LicenseAnchor {
                date: d(2020, 1, 1),
                count: 92,
            },
        ],
    });

    // ---- Webline Holdings: the reliability play of §5. ----
    networks.push(NetworkSpec {
        name: "Webline Holdings".into(),
        ny4_route_towers: 27,
        tail_km: 2.4,
        final_latency: Some(PathTargets {
            ny4: 3.97157,
            nyse: Some(4.04909), // NLN + 117 µs, per §5
            nasdaq: Some(3.92805),
        }),
        apa: ApaTargets {
            ny4: 0.85,
            nyse: 0.92,
            nasdaq: 0.80,
        },
        primary_band: Band::L6GHz,
        rail_band: Band::L6GHz,
        rail_band_fraction: 1.0,
        rail_hop_km: 33.5,
        rails_online: Some(d(2014, 6, 1)),
        eras: vec![
            EraTarget {
                date: d(2013, 1, 1),
                ny4_latency_ms: 4.012,
            },
            EraTarget {
                date: d(2014, 1, 1),
                ny4_latency_ms: 4.000,
            },
            EraTarget {
                date: d(2015, 1, 1),
                ny4_latency_ms: 3.990,
            },
            EraTarget {
                date: d(2016, 1, 1),
                ny4_latency_ms: 3.985,
            },
            EraTarget {
                date: d(2017, 1, 1),
                ny4_latency_ms: 3.980,
            },
            EraTarget {
                date: d(2018, 1, 1),
                ny4_latency_ms: 3.976,
            },
            EraTarget {
                date: d(2019, 1, 1),
                ny4_latency_ms: 3.973,
            },
            EraTarget {
                date: d(2020, 4, 1),
                ny4_latency_ms: 3.97157,
            },
        ],
        first_grant: d(2012, 6, 1),
        shutdown: None,
        license_anchors: vec![
            LicenseAnchor {
                date: d(2013, 1, 1),
                count: 70,
            },
            LicenseAnchor {
                date: d(2015, 1, 1),
                count: 95,
            },
            LicenseAnchor {
                date: d(2017, 1, 1),
                count: 118,
            },
            LicenseAnchor {
                date: d(2019, 1, 1),
                count: 135,
            },
            LicenseAnchor {
                date: d(2020, 1, 1),
                count: 145,
            },
        ],
    });

    // ---- AQ2AT: mid-field chain. ----
    networks.push(NetworkSpec {
        name: "AQ2AT".into(),
        ny4_route_towers: 29,
        tail_km: 6.0,
        final_latency: Some(PathTargets {
            ny4: 4.01101,
            nyse: None,
            nasdaq: None,
        }),
        apa: ApaTargets {
            ny4: 0.0,
            nyse: 0.0,
            nasdaq: 0.0,
        },
        primary_band: Band::B11GHz,
        rail_band: Band::B11GHz,
        rail_band_fraction: 0.0,
        rail_hop_km: 45.0,
        rails_online: None,
        eras: vec![
            EraTarget {
                date: d(2016, 1, 1),
                ny4_latency_ms: 4.030,
            },
            EraTarget {
                date: d(2018, 1, 1),
                ny4_latency_ms: 4.018,
            },
            EraTarget {
                date: d(2020, 4, 1),
                ny4_latency_ms: 4.01101,
            },
        ],
        first_grant: d(2015, 4, 1),
        shutdown: None,
        license_anchors: vec![LicenseAnchor {
            date: d(2018, 1, 1),
            count: 45,
        }],
    });

    // ---- Wireless Internetwork: slower, more towers. ----
    networks.push(NetworkSpec {
        name: "Wireless Internetwork".into(),
        ny4_route_towers: 33,
        tail_km: 9.0,
        final_latency: Some(PathTargets {
            ny4: 4.12246,
            nyse: None,
            nasdaq: None,
        }),
        apa: ApaTargets {
            ny4: 0.0,
            nyse: 0.0,
            nasdaq: 0.0,
        },
        primary_band: Band::B11GHz,
        rail_band: Band::B11GHz,
        rail_band_fraction: 0.0,
        rail_hop_km: 40.0,
        rails_online: None,
        eras: vec![
            EraTarget {
                date: d(2014, 1, 1),
                ny4_latency_ms: 4.140,
            },
            EraTarget {
                date: d(2018, 1, 1),
                ny4_latency_ms: 4.130,
            },
            EraTarget {
                date: d(2020, 4, 1),
                ny4_latency_ms: 4.12246,
            },
        ],
        first_grant: d(2013, 2, 1),
        shutdown: None,
        license_anchors: vec![LicenseAnchor {
            date: d(2017, 1, 1),
            count: 70,
        }],
    });

    // ---- GTT Americas: commodity microwave, not latency-optimized. ----
    networks.push(NetworkSpec {
        name: "GTT Americas".into(),
        ny4_route_towers: 28,
        tail_km: 14.0,
        final_latency: Some(PathTargets {
            ny4: 4.24241,
            nyse: None,
            nasdaq: None,
        }),
        apa: ApaTargets {
            ny4: 0.0,
            nyse: 0.0,
            nasdaq: 0.0,
        },
        primary_band: Band::B11GHz,
        rail_band: Band::B11GHz,
        rail_band_fraction: 0.0,
        rail_hop_km: 42.0,
        rails_online: None,
        eras: vec![
            EraTarget {
                date: d(2015, 1, 1),
                ny4_latency_ms: 4.260,
            },
            EraTarget {
                date: d(2020, 4, 1),
                ny4_latency_ms: 4.24241,
            },
        ],
        first_grant: d(2014, 1, 15),
        shutdown: None,
        license_anchors: vec![LicenseAnchor {
            date: d(2018, 1, 1),
            count: 62,
        }],
    });

    // ---- SW Networks: sprawling short-hop network, slowest of the nine. ----
    networks.push(NetworkSpec {
        name: "SW Networks".into(),
        ny4_route_towers: 74,
        tail_km: 16.0,
        final_latency: Some(PathTargets {
            ny4: 4.44530,
            nyse: None,
            nasdaq: None,
        }),
        apa: ApaTargets {
            ny4: 0.0,
            nyse: 0.0,
            nasdaq: 0.0,
        },
        primary_band: Band::B18GHz,
        rail_band: Band::B18GHz,
        rail_band_fraction: 0.0,
        rail_hop_km: 18.0,
        rails_online: None,
        eras: vec![
            EraTarget {
                date: d(2014, 1, 1),
                ny4_latency_ms: 4.470,
            },
            EraTarget {
                date: d(2020, 4, 1),
                ny4_latency_ms: 4.44530,
            },
        ],
        first_grant: d(2013, 3, 1),
        shutdown: None,
        license_anchors: vec![LicenseAnchor {
            date: d(2016, 1, 1),
            count: 160,
        }],
    });

    // ---- National Tower Company: the full arc (§4, Figs 1-2). ----
    networks.push(NetworkSpec {
        name: "National Tower Company".into(),
        ny4_route_towers: 26,
        tail_km: 4.0,
        final_latency: None, // gone by 2020
        apa: ApaTargets {
            ny4: 0.0,
            nyse: 0.0,
            nasdaq: 0.0,
        },
        primary_band: Band::B11GHz,
        rail_band: Band::B11GHz,
        rail_band_fraction: 0.0,
        rail_hop_km: 45.0,
        rails_online: None,
        eras: vec![
            EraTarget {
                date: d(2013, 1, 1),
                ny4_latency_ms: 4.000,
            },
            EraTarget {
                date: d(2014, 1, 1),
                ny4_latency_ms: 3.992,
            },
            EraTarget {
                date: d(2015, 1, 1),
                ny4_latency_ms: 3.988,
            },
            EraTarget {
                date: d(2016, 1, 1),
                ny4_latency_ms: 3.988,
            },
            EraTarget {
                date: d(2017, 1, 1),
                ny4_latency_ms: 3.988,
            },
        ],
        first_grant: d(2012, 9, 1),
        // Fig. 1 shows NTC's last point at 2017-01-01; Fig. 2 has it
        // cancelling 71 licenses across 2017-2018.
        shutdown: Some(d(2017, 8, 15)),
        license_anchors: vec![
            LicenseAnchor {
                date: d(2013, 1, 1),
                count: 60,
            },
            LicenseAnchor {
                date: d(2014, 1, 1),
                count: 85,
            },
            LicenseAnchor {
                date: d(2015, 1, 1),
                count: 92,
            },
            LicenseAnchor {
                date: d(2016, 1, 1),
                count: 96,
            },
            LicenseAnchor {
                date: d(2017, 1, 1),
                count: 96,
            },
        ],
    });

    ScenarioSpec {
        networks,
        // 29 shortlisted = 10 modeled (9 connected + NTC) + 17 partial
        // + 2 split-entity shells.
        partial_licensees: 17,
        split_entity_pairs: 1,
        // 57 MG/FXO candidates − 29 shortlisted = 28 small licensees.
        small_licensees: 28,
        other_service_licensees: 12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_connected_networks() {
        let s = chicago_nj();
        let connected = s
            .networks
            .iter()
            .filter(|n| n.final_latency.is_some())
            .count();
        assert_eq!(connected, 9, "Table 1 lists nine connected networks");
    }

    #[test]
    fn funnel_arithmetic() {
        let s = chicago_nj();
        let shortlisted = s.networks.len() + s.partial_licensees + 2 * s.split_entity_pairs;
        assert_eq!(shortlisted, 29, "paper's shortlist");
        assert_eq!(
            shortlisted + s.small_licensees,
            57,
            "paper's candidate count"
        );
    }

    #[test]
    fn table1_latency_order() {
        let s = chicago_nj();
        let mut lat: Vec<(String, f64)> = s
            .networks
            .iter()
            .filter_map(|n| n.final_latency.map(|l| (n.name.clone(), l.ny4)))
            .collect();
        lat.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let names: Vec<&str> = lat.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "New Line Networks",
                "Pierce Broadband",
                "Jefferson Microwave",
                "Blueline Comm",
                "Webline Holdings",
                "AQ2AT",
                "Wireless Internetwork",
                "GTT Americas",
                "SW Networks",
            ],
        );
    }

    #[test]
    fn every_connected_network_has_eras_ending_at_snapshot() {
        let s = chicago_nj();
        for n in &s.networks {
            if let Some(f) = n.final_latency {
                let last = n.eras.last().expect("connected networks have eras");
                assert_eq!(last.date, Date::new(2020, 4, 1).unwrap(), "{}", n.name);
                assert!((last.ny4_latency_ms - f.ny4).abs() < 1e-9, "{}", n.name);
            }
        }
    }

    #[test]
    fn era_latencies_non_increasing() {
        let s = chicago_nj();
        for n in &s.networks {
            for w in n.eras.windows(2) {
                assert!(w[0].date < w[1].date, "{}: era dates ordered", n.name);
                assert!(
                    w[1].ny4_latency_ms <= w[0].ny4_latency_ms + 1e-12,
                    "{}: latency must never regress",
                    n.name
                );
            }
        }
    }

    #[test]
    fn latencies_beat_physics_never() {
        // c over the 1186 km geodesic is ~3.95607 ms; nobody can be below.
        let s = chicago_nj();
        for n in &s.networks {
            for e in &n.eras {
                assert!(e.ny4_latency_ms > 3.9561, "{} at {}", n.name, e.date);
            }
        }
    }

    #[test]
    fn webline_nyse_lag_matches_section5() {
        let s = chicago_nj();
        let nln = s
            .networks
            .iter()
            .find(|n| n.name == "New Line Networks")
            .unwrap();
        let wh = s
            .networks
            .iter()
            .find(|n| n.name == "Webline Holdings")
            .unwrap();
        let lag_us = (wh.final_latency.unwrap().nyse.unwrap()
            - nln.final_latency.unwrap().nyse.unwrap())
            * 1000.0;
        assert!(
            (lag_us - 117.0).abs() < 0.5,
            "§5 quotes a 117 µs NYSE lag, got {lag_us}"
        );
        let lag_nasdaq_us = (wh.final_latency.unwrap().nasdaq.unwrap()
            - nln.final_latency.unwrap().nasdaq.unwrap())
            * 1000.0;
        assert!(
            (lag_nasdaq_us - 0.8).abs() < 0.1,
            "§5 quotes 0.8 µs on NASDAQ, got {lag_nasdaq_us}"
        );
    }

    #[test]
    fn ntc_dies_and_pb_arrives() {
        let s = chicago_nj();
        let ntc = s
            .networks
            .iter()
            .find(|n| n.name == "National Tower Company")
            .unwrap();
        assert!(ntc.shutdown.is_some());
        assert!(ntc.final_latency.is_none());
        let pb = s
            .networks
            .iter()
            .find(|n| n.name == "Pierce Broadband")
            .unwrap();
        assert!(pb.first_grant >= Date::new(2019, 1, 1).unwrap());
        assert_eq!(pb.eras.len(), 1);
    }
}
