//! Minimal CSV emission (RFC-4180 quoting) for the tables.

/// Quote a field when needed per RFC 4180.
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A CSV table under construction.
#[derive(Debug, Clone, Default)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Start a table with the given column names.
    pub fn new(columns: &[&str]) -> CsvTable {
        CsvTable {
            header: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    ///
    /// # Panics
    /// Panics on column-count mismatch (always a caller bug).
    pub fn push_row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width != header width");
        self.rows.push(cells.to_vec());
    }

    /// Convenience for string-slice rows.
    pub fn push(&mut self, cells: &[&str]) {
        self.push_row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serialize with CRLF-free line endings (plain `\n`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| field(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_emission() {
        let mut t = CsvTable::new(&["licensee", "latency_ms", "towers"]);
        t.push(&["New Line Networks", "3.96171", "25"]);
        t.push(&["Pierce Broadband", "3.96209", "29"]);
        let csv = t.to_csv();
        assert_eq!(
            csv,
            "licensee,latency_ms,towers\nNew Line Networks,3.96171,25\nPierce Broadband,3.96209,29\n"
        );
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn quoting_rules() {
        let mut t = CsvTable::new(&["name", "note"]);
        t.push(&["a,b", "say \"hi\""]);
        t.push(&["line\nbreak", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert!(csv.contains("\"line\nbreak\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.push(&["only one"]);
    }
}
