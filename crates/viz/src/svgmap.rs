//! Self-contained SVG corridor maps (the offline Fig. 3).

use hft_core::Network;
use hft_geodesy::LatLon;

/// Styling/layout options for a corridor map.
#[derive(Debug, Clone)]
pub struct MapStyle {
    /// Canvas width in pixels; height follows the geographic aspect.
    pub width_px: f64,
    /// Link stroke color (CSS color string).
    pub link_color: String,
    /// Tower fill color.
    pub tower_color: String,
    /// Tower marker radius, px.
    pub tower_radius_px: f64,
    /// Extra margin around the bounding box, as a fraction of its span.
    pub margin_frac: f64,
}

impl Default for MapStyle {
    fn default() -> Self {
        MapStyle {
            width_px: 1200.0,
            link_color: "#c0392b".into(),
            tower_color: "#2c3e50".into(),
            tower_radius_px: 3.0,
            margin_frac: 0.06,
        }
    }
}

/// Equirectangular projection over a bounding box.
struct Projection {
    min_lon: f64,
    max_lat: f64,
    scale_x: f64,
    scale_y: f64,
}

impl Projection {
    fn fit(points: &[LatLon], width_px: f64, margin_frac: f64) -> (Projection, f64, f64) {
        let (mut min_lat, mut max_lat) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_lon, mut max_lon) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_lat = min_lat.min(p.lat_deg());
            max_lat = max_lat.max(p.lat_deg());
            min_lon = min_lon.min(p.lon_deg());
            max_lon = max_lon.max(p.lon_deg());
        }
        let lat_span = (max_lat - min_lat).max(1e-6);
        let lon_span = (max_lon - min_lon).max(1e-6);
        let (min_lat, max_lat) = (
            min_lat - lat_span * margin_frac,
            max_lat + lat_span * margin_frac,
        );
        let (min_lon, max_lon) = (
            min_lon - lon_span * margin_frac,
            max_lon + lon_span * margin_frac,
        );
        let lat_span = max_lat - min_lat;
        let lon_span = max_lon - min_lon;
        // Shrink x by cos(mid-latitude) so distances look right.
        let mid_lat_cos = ((min_lat + max_lat) / 2.0).to_radians().cos();
        let height_px = width_px * (lat_span / (lon_span * mid_lat_cos));
        (
            Projection {
                min_lon,
                max_lat,
                scale_x: width_px / lon_span,
                scale_y: height_px / lat_span,
            },
            width_px,
            height_px,
        )
    }

    fn project(&self, p: &LatLon) -> (f64, f64) {
        (
            (p.lon_deg() - self.min_lon) * self.scale_x,
            (self.max_lat - p.lat_deg()) * self.scale_y,
        )
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Render one or more networks (e.g. the same licensee at two dates, or
/// several competitors) on a shared map. Extra `markers` (e.g. the data
/// centers) are drawn as labeled squares.
pub fn networks_to_svg(
    networks: &[(&Network, &MapStyle)],
    markers: &[(&str, LatLon)],
    width_px: f64,
) -> String {
    let mut all_points: Vec<LatLon> = Vec::new();
    for (net, _) in networks {
        all_points.extend(net.graph.nodes().map(|(_, t)| t.position));
    }
    all_points.extend(markers.iter().map(|(_, p)| *p));
    if all_points.is_empty() {
        return "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"10\" height=\"10\"/>".into();
    }
    let (proj, w, h) = Projection::fit(&all_points, width_px, 0.06);

    let mut body = String::new();
    for (net, style) in networks {
        for (_, u, v, _) in net.graph.edges() {
            let (x1, y1) = proj.project(&net.graph.node(u).position);
            let (x2, y2) = proj.project(&net.graph.node(v).position);
            body.push_str(&format!(
                "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" stroke=\"{}\" stroke-width=\"1.2\"/>\n",
                xml_escape(&style.link_color),
            ));
        }
        for (_, t) in net.graph.nodes() {
            let (x, y) = proj.project(&t.position);
            body.push_str(&format!(
                "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"{}\" fill=\"{}\"/>\n",
                style.tower_radius_px,
                xml_escape(&style.tower_color),
            ));
        }
    }
    for (label, p) in markers {
        let (x, y) = proj.project(p);
        body.push_str(&format!(
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"#27ae60\"/>\n",
            x - 5.0,
            y - 5.0,
        ));
        body.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"14\" font-family=\"sans-serif\">{}</text>\n",
            x + 8.0,
            y - 6.0,
            xml_escape(label),
        ));
    }
    format!(
        concat!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" ",
            "viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"#fdfdfd\"/>\n{}</svg>\n"
        ),
        w, h, w, h, body,
    )
}

/// Convenience: a single network with default styling plus data-center
/// markers.
pub fn network_to_svg(network: &Network, markers: &[(&str, LatLon)]) -> String {
    let style = MapStyle::default();
    networks_to_svg(&[(network, &style)], markers, style.width_px)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hft_core::network::{MwLink, Tower};
    use hft_geodesy::SnapGrid;
    use hft_netgraph::Graph;
    use hft_time::Date;

    fn sample() -> Network {
        let mut graph = Graph::new();
        let snap = SnapGrid::arc_second();
        let pts = [
            LatLon::new(41.7625, -88.1712).unwrap(),
            LatLon::new(41.5000, -83.0000).unwrap(),
            LatLon::new(40.7930, -74.0576).unwrap(),
        ];
        let ids: Vec<_> = pts
            .iter()
            .map(|p| {
                graph.add_node(Tower {
                    position: *p,
                    cell: snap.snap(p),
                    ground_elevation_m: 230.0,
                    structure_height_m: 110.0,
                })
            })
            .collect();
        for w in ids.windows(2) {
            let d = graph
                .node(w[0])
                .position
                .geodesic_distance_m(&graph.node(w[1]).position);
            graph.add_edge(
                w[0],
                w[1],
                MwLink {
                    length_m: d,
                    frequencies_ghz: vec![6.1],
                    licenses: vec![],
                },
            );
        }
        Network {
            licensee: "Map Net".into(),
            as_of: Date::new(2020, 4, 1).unwrap(),
            graph,
        }
    }

    #[test]
    fn renders_elements() {
        let svg = network_to_svg(
            &sample(),
            &[("CME", LatLon::new(41.7625, -88.1712).unwrap())],
        );
        assert!(svg.starts_with("<svg xmlns"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<line").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 3);
        assert_eq!(svg.matches("<rect").count(), 2); // background + marker
        assert!(svg.contains(">CME</text>"));
    }

    #[test]
    fn aspect_ratio_reasonable() {
        // Corridor is ~14° wide, ~1° tall: height must be far less than width.
        let svg = network_to_svg(&sample(), &[]);
        let w: f64 = svg
            .split("width=\"")
            .nth(1)
            .unwrap()
            .split('"')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let h: f64 = svg
            .split("height=\"")
            .nth(1)
            .unwrap()
            .split('"')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(w > h, "corridor map must be wide: {w}x{h}");
        assert!(h > 20.0, "but not degenerate");
    }

    #[test]
    fn coordinates_in_canvas() {
        let svg = network_to_svg(&sample(), &[]);
        for part in svg.split("cx=\"").skip(1) {
            let x: f64 = part.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=1200.0).contains(&x), "x {x} out of canvas");
        }
    }

    #[test]
    fn empty_input_is_valid_svg() {
        let svg = networks_to_svg(&[], &[], 800.0);
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn hostile_label_escaped() {
        let svg = network_to_svg(
            &sample(),
            &[("<script>\"x\"&", LatLon::new(41.0, -80.0).unwrap())],
        );
        assert!(!svg.contains("<script>"));
        assert!(svg.contains("&lt;script&gt;"));
    }

    #[test]
    fn two_networks_styled_independently() {
        let n1 = sample();
        let n2 = sample();
        let s1 = MapStyle {
            link_color: "#111111".into(),
            ..Default::default()
        };
        let s2 = MapStyle {
            link_color: "#222222".into(),
            ..Default::default()
        };
        let svg = networks_to_svg(&[(&n1, &s1), (&n2, &s2)], &[], 1000.0);
        assert!(svg.contains("#111111"));
        assert!(svg.contains("#222222"));
    }
}
