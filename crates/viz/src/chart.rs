//! A small from-scratch SVG chart renderer.
//!
//! Covers exactly what the paper's figures need: multi-series line charts
//! with markers (Figs 1 and 2) and CDF step charts (Fig 4), with axes,
//! ticks, labels and a legend. Series with gaps (a network not yet / no
//! longer connected) simply break the polyline, as gnuplot does.

/// One data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// CSS color.
    pub color: String,
    /// Points; `None` y-values create gaps in the line.
    pub points: Vec<(f64, Option<f64>)>,
}

impl Series {
    /// A fully dense series.
    pub fn dense(label: &str, color: &str, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.to_string(),
            color: color.to_string(),
            points: points.into_iter().map(|(x, y)| (x, Some(y))).collect(),
        }
    }

    /// A CDF step series from ascending `(value, F(value))` step points:
    /// inserts the horizontal-then-vertical step geometry.
    pub fn cdf_steps(label: &str, color: &str, steps: &[(f64, f64)]) -> Series {
        let mut points = Vec::with_capacity(steps.len() * 2 + 1);
        let mut prev_f = 0.0;
        for &(x, f) in steps {
            points.push((x, Some(prev_f)));
            points.push((x, Some(f)));
            prev_f = f;
        }
        Series {
            label: label.to_string(),
            color: color.to_string(),
            points,
        }
    }
}

/// Chart-level configuration.
#[derive(Debug, Clone)]
pub struct ChartConfig {
    /// Title rendered above the plot.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Canvas width, px.
    pub width_px: f64,
    /// Canvas height, px.
    pub height_px: f64,
    /// Explicit y range; `None` fits the data (with 5% headroom).
    pub y_range: Option<(f64, f64)>,
    /// Explicit x range; `None` fits the data.
    pub x_range: Option<(f64, f64)>,
}

impl Default for ChartConfig {
    fn default() -> Self {
        ChartConfig {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            width_px: 900.0,
            height_px: 540.0,
            y_range: None,
            x_range: None,
        }
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Round `span/desired` to a 1/2/5×10ᵏ tick step.
fn nice_step(span: f64, desired_ticks: usize) -> f64 {
    if span <= 0.0 || !span.is_finite() {
        return 1.0;
    }
    let raw = span / desired_ticks.max(1) as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let factor = if norm <= 1.5 {
        1.0
    } else if norm <= 3.0 {
        2.0
    } else if norm <= 7.0 {
        5.0
    } else {
        10.0
    };
    factor * mag
}

fn fmt_tick(v: f64, step: f64) -> String {
    let decimals = if step >= 1.0 {
        0
    } else {
        (-step.log10().floor()) as usize
    };
    format!("{v:.decimals$}")
}

/// Render the chart as a standalone SVG document.
pub fn render(config: &ChartConfig, series: &[Series]) -> String {
    const MARGIN_L: f64 = 80.0;
    const MARGIN_R: f64 = 20.0;
    const MARGIN_T: f64 = 48.0;
    const MARGIN_B: f64 = 60.0;

    let plot_w = (config.width_px - MARGIN_L - MARGIN_R).max(10.0);
    let plot_h = (config.height_px - MARGIN_T - MARGIN_B).max(10.0);

    // Data ranges.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for s in series {
        for &(x, y) in &s.points {
            xs.push(x);
            if let Some(y) = y {
                ys.push(y);
            }
        }
    }
    let (x_min, x_max) = config.x_range.unwrap_or_else(|| {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if lo.is_finite() && hi > lo {
            (lo, hi)
        } else {
            (0.0, 1.0)
        }
    });
    let (y_min, y_max) = config.y_range.unwrap_or_else(|| {
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if lo.is_finite() && hi > lo {
            let pad = (hi - lo) * 0.05;
            (lo - pad, hi + pad)
        } else {
            (0.0, 1.0)
        }
    });

    let px = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min).max(1e-12) * plot_w;
    let py = |y: f64| MARGIN_T + plot_h - (y - y_min) / (y_max - y_min).max(1e-12) * plot_h;

    let mut body = String::new();
    // Frame.
    body.push_str(&format!(
        "<rect x=\"{MARGIN_L}\" y=\"{MARGIN_T}\" width=\"{plot_w:.1}\" height=\"{plot_h:.1}\" fill=\"white\" stroke=\"#333\"/>\n"
    ));
    // Ticks and grid.
    let x_step = nice_step(x_max - x_min, 8);
    let mut t = (x_min / x_step).ceil() * x_step;
    while t <= x_max + 1e-9 {
        let x = px(t);
        body.push_str(&format!(
            "<line x1=\"{x:.1}\" y1=\"{:.1}\" x2=\"{x:.1}\" y2=\"{:.1}\" stroke=\"#ddd\"/>\n",
            MARGIN_T,
            MARGIN_T + plot_h,
        ));
        body.push_str(&format!(
            "<text x=\"{x:.1}\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\" font-family=\"sans-serif\">{}</text>\n",
            MARGIN_T + plot_h + 18.0,
            fmt_tick(t, x_step),
        ));
        t += x_step;
    }
    let y_step = nice_step(y_max - y_min, 6);
    let mut t = (y_min / y_step).ceil() * y_step;
    while t <= y_max + 1e-9 {
        let y = py(t);
        body.push_str(&format!(
            "<line x1=\"{MARGIN_L}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" stroke=\"#ddd\"/>\n",
            MARGIN_L + plot_w,
        ));
        body.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"end\" font-family=\"sans-serif\">{}</text>\n",
            MARGIN_L - 6.0,
            y + 4.0,
            fmt_tick(t, y_step),
        ));
        t += y_step;
    }
    // Series.
    for s in series {
        let mut segments: Vec<Vec<(f64, f64)>> = vec![Vec::new()];
        for &(x, y) in &s.points {
            match y {
                Some(y) => segments.last_mut().expect("non-empty").push((px(x), py(y))),
                None => segments.push(Vec::new()),
            }
        }
        for seg in segments.iter().filter(|s| s.len() >= 2) {
            let pts: Vec<String> = seg.iter().map(|(x, y)| format!("{x:.1},{y:.1}")).collect();
            body.push_str(&format!(
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"2\"/>\n",
                pts.join(" "),
                xml_escape(&s.color),
            ));
        }
        for seg in &segments {
            for (x, y) in seg {
                body.push_str(&format!(
                    "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"2.5\" fill=\"{}\"/>\n",
                    xml_escape(&s.color),
                ));
            }
        }
    }
    // Legend.
    for (i, s) in series.iter().enumerate() {
        let ly = MARGIN_T + 16.0 + i as f64 * 18.0;
        let lx = MARGIN_L + plot_w - 220.0;
        body.push_str(&format!(
            "<line x1=\"{lx:.1}\" y1=\"{ly:.1}\" x2=\"{:.1}\" y2=\"{ly:.1}\" stroke=\"{}\" stroke-width=\"2\"/>\n",
            lx + 24.0,
            xml_escape(&s.color),
        ));
        body.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"12\" font-family=\"sans-serif\">{}</text>\n",
            lx + 30.0,
            ly + 4.0,
            xml_escape(&s.label),
        ));
    }
    // Labels.
    if !config.title.is_empty() {
        body.push_str(&format!(
            "<text x=\"{:.1}\" y=\"24\" font-size=\"16\" text-anchor=\"middle\" font-family=\"sans-serif\">{}</text>\n",
            MARGIN_L + plot_w / 2.0,
            xml_escape(&config.title),
        ));
    }
    if !config.x_label.is_empty() {
        body.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"13\" text-anchor=\"middle\" font-family=\"sans-serif\">{}</text>\n",
            MARGIN_L + plot_w / 2.0,
            MARGIN_T + plot_h + 42.0,
            xml_escape(&config.x_label),
        ));
    }
    if !config.y_label.is_empty() {
        body.push_str(&format!(
            concat!(
                "<text x=\"18\" y=\"{:.1}\" font-size=\"13\" text-anchor=\"middle\" ",
                "font-family=\"sans-serif\" transform=\"rotate(-90 18 {:.1})\">{}</text>\n"
            ),
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            xml_escape(&config.y_label),
        ));
    }

    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n{}</svg>\n",
        config.width_px, config.height_px, config.width_px, config.height_px, body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_line_chart() {
        let cfg = ChartConfig {
            title: "Latency evolution".into(),
            x_label: "Time".into(),
            y_label: "Latency (ms)".into(),
            ..Default::default()
        };
        let s = vec![
            Series::dense(
                "NLN",
                "#1f77b4",
                vec![(2016.0, 3.985), (2017.0, 3.975), (2018.0, 3.964)],
            ),
            Series::dense("WH", "#d62728", vec![(2013.0, 4.012), (2018.0, 3.976)]),
        ];
        let svg = render(&cfg, &s);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("Latency evolution"));
        assert!(svg.contains("polyline"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">NLN</text>"));
    }

    #[test]
    fn gaps_split_polylines() {
        let s = Series {
            label: "gappy".into(),
            color: "#000".into(),
            points: vec![
                (0.0, Some(1.0)),
                (1.0, Some(2.0)),
                (2.0, None),
                (3.0, Some(1.5)),
                (4.0, Some(1.8)),
            ],
        };
        let svg = render(&ChartConfig::default(), &[s]);
        assert_eq!(
            svg.matches("<polyline").count(),
            2,
            "gap must split the line"
        );
    }

    #[test]
    fn cdf_steps_monotone() {
        let s = Series::cdf_steps("cdf", "#333", &[(10.0, 0.25), (20.0, 0.5), (30.0, 1.0)]);
        // 2 points per step.
        assert_eq!(s.points.len(), 6);
        let ys: Vec<f64> = s.points.iter().map(|(_, y)| y.unwrap()).collect();
        for w in ys.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        let svg = render(&ChartConfig::default(), &[s]);
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn explicit_ranges_respected() {
        // Fig 1 style: y starts at a deliberately non-zero point.
        let cfg = ChartConfig {
            y_range: Some((3.95, 4.05)),
            ..Default::default()
        };
        let s = Series::dense("x", "#000", vec![(0.0, 3.96), (1.0, 3.97)]);
        let svg = render(&cfg, &[s]);
        assert!(svg.contains(">3.95<") || svg.contains(">3.96<"), "{svg}");
        assert!(!svg.contains(">0<"), "y axis must not include zero");
    }

    #[test]
    fn nice_steps() {
        assert_eq!(nice_step(10.0, 10), 1.0);
        assert_eq!(nice_step(100.0, 8), 10.0);
        assert!((nice_step(0.07, 6) - 0.01).abs() < 1e-12);
        assert_eq!(nice_step(0.0, 5), 1.0);
    }

    #[test]
    fn empty_series_ok() {
        let svg = render(&ChartConfig::default(), &[]);
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn hostile_labels_escaped() {
        let cfg = ChartConfig {
            title: "<bad> & \"title\"".into(),
            ..Default::default()
        };
        let svg = render(&cfg, &[]);
        assert!(!svg.contains("<bad>"));
        assert!(svg.contains("&lt;bad&gt; &amp; &quot;title&quot;"));
    }
}
