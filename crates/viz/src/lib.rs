//! # hft-viz
//!
//! Output formats for the reconstructed networks and analyses:
//!
//! * [`geojson`] — networks as GeoJSON FeatureCollections (towers as
//!   `Point`s, microwave links as `LineString`s), the interchange format
//!   replacing the paper's Google-Maps visualizations (Fig. 3);
//! * [`svgmap`] — self-contained SVG corridor maps (equirectangular
//!   projection), so the Fig. 3 network pictures render offline;
//! * [`chart`] — a small SVG chart renderer: line series for the Fig. 1/2
//!   time series, step series for the Fig. 4 CDFs;
//! * [`csv`] — simple CSV emission for every table.
//!
//! Everything is emitted from scratch — no serializer dependencies — and
//! the emitters escape/format defensively so arbitrary licensee names
//! cannot corrupt the output.
//!
//! ```
//! use hft_viz::chart::{render, ChartConfig, Series};
//!
//! let series = Series::dense("NLN", "#d62728", vec![(2016.0, 3.985), (2020.25, 3.96171)]);
//! let svg = render(&ChartConfig::default(), &[series]);
//! assert!(svg.starts_with("<svg") && svg.contains("polyline"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod csv;
pub mod geojson;
pub mod svgmap;
