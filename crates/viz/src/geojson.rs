//! GeoJSON emission for reconstructed networks.

use hft_core::Network;

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_coord(v: f64) -> String {
    format!("{v:.6}")
}

/// Render a network as a GeoJSON `FeatureCollection`: one `Point` feature
/// per tower (with elevation/height properties) and one `LineString`
/// feature per microwave link (with length and frequency properties).
pub fn network_to_geojson(network: &Network) -> String {
    let mut features = Vec::new();
    for (id, t) in network.graph.nodes() {
        features.push(format!(
            concat!(
                "{{\"type\":\"Feature\",\"geometry\":{{\"type\":\"Point\",",
                "\"coordinates\":[{},{}]}},\"properties\":{{\"kind\":\"tower\",",
                "\"id\":{},\"ground_m\":{:.1},\"height_m\":{:.1}}}}}"
            ),
            fmt_coord(t.position.lon_deg()),
            fmt_coord(t.position.lat_deg()),
            id.index(),
            t.ground_elevation_m,
            t.structure_height_m,
        ));
    }
    for (_, u, v, link) in network.graph.edges() {
        let pu = network.graph.node(u).position;
        let pv = network.graph.node(v).position;
        let freqs: Vec<String> = link
            .frequencies_ghz
            .iter()
            .map(|f| format!("{f:.5}"))
            .collect();
        features.push(format!(
            concat!(
                "{{\"type\":\"Feature\",\"geometry\":{{\"type\":\"LineString\",",
                "\"coordinates\":[[{},{}],[{},{}]]}},\"properties\":{{\"kind\":\"link\",",
                "\"a\":{},\"b\":{},\"length_km\":{:.3},\"frequencies_ghz\":[{}]}}}}"
            ),
            fmt_coord(pu.lon_deg()),
            fmt_coord(pu.lat_deg()),
            fmt_coord(pv.lon_deg()),
            fmt_coord(pv.lat_deg()),
            u.index(),
            v.index(),
            link.length_m / 1000.0,
            freqs.join(","),
        ));
    }
    format!(
        concat!(
            "{{\"type\":\"FeatureCollection\",\"properties\":{{\"licensee\":\"{}\",",
            "\"as_of\":\"{}\"}},\"features\":[{}]}}"
        ),
        json_escape(&network.licensee),
        network.as_of.to_iso(),
        features.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hft_core::network::{MwLink, Tower};
    use hft_geodesy::{LatLon, SnapGrid};
    use hft_netgraph::Graph;
    use hft_time::Date;

    fn sample(name: &str) -> Network {
        let mut graph = Graph::new();
        let snap = SnapGrid::arc_second();
        let p1 = LatLon::new(41.7625, -88.1712).unwrap();
        let p2 = LatLon::new(41.7000, -87.6000).unwrap();
        let a = graph.add_node(Tower {
            position: p1,
            cell: snap.snap(&p1),
            ground_elevation_m: 230.0,
            structure_height_m: 110.0,
        });
        let b = graph.add_node(Tower {
            position: p2,
            cell: snap.snap(&p2),
            ground_elevation_m: 220.0,
            structure_height_m: 90.0,
        });
        graph.add_edge(
            a,
            b,
            MwLink {
                length_m: p1.geodesic_distance_m(&p2),
                frequencies_ghz: vec![11.245],
                licenses: vec![],
            },
        );
        Network {
            licensee: name.into(),
            as_of: Date::new(2020, 4, 1).unwrap(),
            graph,
        }
    }

    #[test]
    fn structure_is_valid_feature_collection() {
        let g = network_to_geojson(&sample("New Line Networks"));
        assert!(g.starts_with("{\"type\":\"FeatureCollection\""));
        assert_eq!(g.matches("\"type\":\"Feature\"").count(), 3); // 2 towers + 1 link
        assert_eq!(g.matches("\"type\":\"Point\"").count(), 2);
        assert_eq!(g.matches("\"type\":\"LineString\"").count(), 1);
        assert!(g.contains("\"licensee\":\"New Line Networks\""));
        assert!(g.contains("\"as_of\":\"2020-04-01\""));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(g.matches('{').count(), g.matches('}').count());
        assert_eq!(g.matches('[').count(), g.matches(']').count());
    }

    #[test]
    fn coordinates_are_lon_lat_order() {
        let g = network_to_geojson(&sample("X"));
        // GeoJSON mandates [lon, lat]: longitude (-88.17) first.
        assert!(g.contains("[-88.171200,41.762500]"), "{g}");
    }

    #[test]
    fn link_properties_present() {
        let g = network_to_geojson(&sample("X"));
        assert!(g.contains("\"length_km\":"));
        assert!(g.contains("\"frequencies_ghz\":[11.24500]"));
    }

    #[test]
    fn hostile_licensee_name_escaped() {
        let g = network_to_geojson(&sample("Evil \"Quote\" \\ Networks\n"));
        assert!(g.contains("Evil \\\"Quote\\\" \\\\ Networks\\n"));
        assert_eq!(g.matches('{').count(), g.matches('}').count());
    }

    #[test]
    fn empty_network() {
        let net = Network {
            licensee: "Empty".into(),
            as_of: Date::new(2020, 4, 1).unwrap(),
            graph: Graph::new(),
        };
        let g = network_to_geojson(&net);
        assert!(g.contains("\"features\":[]"));
    }

    #[test]
    fn escape_control_chars() {
        assert_eq!(json_escape("a\u{01}b"), "a\\u0001b");
        assert_eq!(json_escape("tab\there"), "tab\\there");
    }
}
