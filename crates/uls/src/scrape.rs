//! The §2.2 data-scraping pipeline as a reusable function.
//!
//! The paper's funnel:
//!
//! 1. Geographic search: all licenses within 10 km of the CME data
//!    center (57 candidate licensees in the paper's April 2020 run).
//! 2. Site-based filter: keep radio service `MG` (Microwave
//!    Industrial/Business Pool) with station class `FXO` (Operational
//!    Fixed).
//! 3. Volume filter: drop licensees with fewer than 11 filings — the
//!    1,100 km corridor needs at least 11 towers, since >100 km
//!    microwave hops are impractically lossy.
//!
//! The remaining licensees (29 in the paper) are the candidates whose
//! licenses reconstruction analyzes in detail.

use crate::license::{License, RadioService, StationClass};
use crate::portal::UlsPortal;
use hft_geodesy::LatLon;
use std::collections::BTreeSet;

/// Parameters of the §2.2 pipeline, defaulting to the paper's values.
#[derive(Debug, Clone, Copy)]
pub struct ScrapeConfig {
    /// Radius of the geographic search around the reference data center, km.
    pub radius_km: f64,
    /// Minimum filings for a licensee to stay shortlisted.
    pub min_filings: usize,
}

impl Default for ScrapeConfig {
    fn default() -> Self {
        ScrapeConfig {
            radius_km: 10.0,
            min_filings: 11,
        }
    }
}

/// Counters describing the §2.2 funnel (the numbers quoted in the paper:
/// 57 candidates → 29 shortlisted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunnelReport {
    /// Licensees with any license near the reference data center.
    pub geographic_candidates: usize,
    /// Licensees surviving the MG/FXO service filter.
    pub service_filtered: usize,
    /// Licensees with at least `min_filings` MG/FXO filings.
    pub shortlisted: usize,
    /// The shortlisted licensee names, sorted.
    pub shortlist: Vec<String>,
}

/// Run the scrape pipeline against a portal.
///
/// Returns, per shortlisted licensee, their full license list (the
/// equivalent of walking each license-detail page), plus the funnel
/// counters.
pub fn run_pipeline<'a, P: UlsPortal>(
    portal: &'a P,
    reference: &LatLon,
    config: &ScrapeConfig,
) -> (Vec<(String, Vec<&'a License>)>, FunnelReport) {
    // Degenerate search radii (zero, negative, NaN) describe an empty
    // region: short-circuit to an empty funnel instead of leaning on
    // whatever the portal does with them. NaN fails both comparisons, so
    // it takes this branch too.
    if config.radius_km <= 0.0 || config.radius_km.is_nan() {
        return (
            Vec::new(),
            FunnelReport {
                geographic_candidates: 0,
                service_filtered: 0,
                shortlisted: 0,
                shortlist: Vec::new(),
            },
        );
    }

    // Step 1: geographic search → candidate licensees.
    let near = portal.geographic_search(reference, config.radius_km);
    let geographic: BTreeSet<&str> = near.iter().map(|l| l.licensee.as_str()).collect();

    // Step 2: MG/FXO filter, still anchored to the geographic candidates.
    let mg_fxo_near: BTreeSet<&str> = near
        .iter()
        .filter(|l| l.service == RadioService::MG && l.station_class == StationClass::FXO)
        .map(|l| l.licensee.as_str())
        .collect();

    // Step 3: fetch each candidate's full MG/FXO license list and apply
    // the volume filter.
    let mut shortlisted: Vec<(String, Vec<&License>)> = Vec::new();
    for name in &mg_fxo_near {
        let filings: Vec<&License> = portal
            .licensee_search(name)
            .into_iter()
            .filter(|l| l.service == RadioService::MG && l.station_class == StationClass::FXO)
            .collect();
        if filings.len() >= config.min_filings {
            shortlisted.push((name.to_string(), filings));
        }
    }
    shortlisted.sort_by(|a, b| a.0.cmp(&b.0));

    let report = FunnelReport {
        geographic_candidates: geographic.len(),
        service_filtered: mg_fxo_near.len(),
        shortlisted: shortlisted.len(),
        shortlist: shortlisted.iter().map(|(n, _)| n.clone()).collect(),
    };
    (shortlisted, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::license::{CallSign, FrequencyAssignment, LicenseId, MicrowavePath, TowerSite};
    use crate::portal::UlsDatabase;
    use hft_time::Date;

    /// Build a licensee with `n` MG/FXO filings, the first one near CME.
    fn licenses_for(
        start_id: u64,
        name: &str,
        n: usize,
        service: RadioService,
        near_cme: bool,
    ) -> Vec<License> {
        (0..n)
            .map(|i| {
                let base_lon = if near_cme && i == 0 {
                    -88.17
                } else {
                    -87.0 + i as f64 * 0.3
                };
                let tx = TowerSite::at(LatLon::new(41.7, base_lon).unwrap());
                let rx = TowerSite::at(LatLon::new(41.7, base_lon + 0.3).unwrap());
                License {
                    id: LicenseId(start_id + i as u64),
                    call_sign: CallSign(format!("WQ{:05}", start_id + i as u64)),
                    licensee: name.into(),
                    service: service.clone(),
                    station_class: StationClass::FXO,
                    grant_date: Date::new(2015, 1, 1).unwrap(),
                    termination_date: None,
                    cancellation_date: None,
                    paths: vec![MicrowavePath {
                        tx,
                        rx,
                        frequencies: vec![FrequencyAssignment { center_hz: 6.0e9 }],
                    }],
                }
            })
            .collect()
    }

    fn cme() -> LatLon {
        LatLon::new(41.7625, -88.171233).unwrap()
    }

    #[test]
    fn funnel_filters_as_specified() {
        let mut all = Vec::new();
        all.extend(licenses_for(100, "BigNet", 15, RadioService::MG, true)); // passes
        all.extend(licenses_for(200, "SmallNet", 5, RadioService::MG, true)); // too few filings
        all.extend(licenses_for(
            300,
            "CommonCarrier",
            20,
            RadioService::CF,
            true,
        )); // wrong service
        all.extend(licenses_for(400, "FarNet", 20, RadioService::MG, false)); // not near CME
        let db = UlsDatabase::from_licenses(all);

        let (shortlisted, report) = run_pipeline(&db, &cme(), &ScrapeConfig::default());
        assert_eq!(report.geographic_candidates, 3); // BigNet, SmallNet, CommonCarrier
        assert_eq!(report.service_filtered, 2); // BigNet, SmallNet
        assert_eq!(report.shortlisted, 1);
        assert_eq!(report.shortlist, vec!["BigNet".to_string()]);
        assert_eq!(shortlisted.len(), 1);
        assert_eq!(shortlisted[0].1.len(), 15);
    }

    #[test]
    fn volume_filter_boundary() {
        let mut all = Vec::new();
        all.extend(licenses_for(100, "Exactly11", 11, RadioService::MG, true));
        all.extend(licenses_for(300, "Exactly10", 10, RadioService::MG, true));
        let db = UlsDatabase::from_licenses(all);
        let (_, report) = run_pipeline(&db, &cme(), &ScrapeConfig::default());
        assert_eq!(report.shortlist, vec!["Exactly11".to_string()]);
    }

    #[test]
    fn non_mg_filings_do_not_count_toward_volume() {
        // 8 MG filings + 8 CF filings = only 8 countable.
        let mut all = licenses_for(100, "Mixed", 8, RadioService::MG, true);
        all.extend(licenses_for(200, "Mixed", 8, RadioService::CF, true));
        let db = UlsDatabase::from_licenses(all);
        let (_, report) = run_pipeline(&db, &cme(), &ScrapeConfig::default());
        assert_eq!(report.shortlisted, 0);
    }

    #[test]
    fn empty_portal_yields_empty_funnel() {
        let db = UlsDatabase::new();
        let (shortlisted, report) = run_pipeline(&db, &cme(), &ScrapeConfig::default());
        assert!(shortlisted.is_empty());
        assert_eq!(report.geographic_candidates, 0);
        assert_eq!(report.service_filtered, 0);
        assert_eq!(report.shortlisted, 0);
    }

    #[test]
    fn degenerate_radius_yields_empty_funnel() {
        // A licensee with a tower *exactly at* the reference point would
        // slip through a plain `distance <= radius` test even at radius
        // zero; the pipeline must treat all degenerate radii as an empty
        // region instead of falling through to the portal search.
        let mut all = licenses_for(100, "AtCme", 15, RadioService::MG, true);
        all[0].paths[0].tx = TowerSite::at(cme());
        let db = UlsDatabase::from_licenses(all);
        for radius_km in [0.0, -5.0, f64::NAN, f64::NEG_INFINITY] {
            let cfg = ScrapeConfig {
                radius_km,
                ..ScrapeConfig::default()
            };
            let (shortlisted, report) = run_pipeline(&db, &cme(), &cfg);
            assert!(shortlisted.is_empty(), "radius {radius_km}");
            assert_eq!(report.geographic_candidates, 0, "radius {radius_km}");
            assert_eq!(report.service_filtered, 0, "radius {radius_km}");
            assert_eq!(report.shortlisted, 0, "radius {radius_km}");
            assert!(report.shortlist.is_empty(), "radius {radius_km}");
        }
        // Sanity: the same corpus shortlists at the paper's radius.
        let (_, ok) = run_pipeline(&db, &cme(), &ScrapeConfig::default());
        assert_eq!(ok.shortlisted, 1);
    }

    #[test]
    fn custom_config_respected() {
        let all = licenses_for(100, "Tiny", 3, RadioService::MG, true);
        let db = UlsDatabase::from_licenses(all);
        let cfg = ScrapeConfig {
            radius_km: 10.0,
            min_filings: 2,
        };
        let (_, report) = run_pipeline(&db, &cme(), &cfg);
        assert_eq!(report.shortlisted, 1);
    }
}
