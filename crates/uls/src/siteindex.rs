//! Equirectangular bucket grid over tower sites.
//!
//! The portal's "Geographic Search" asks, per query, which licenses have
//! any tower site within a radius of a center. The linear-scan answer
//! visits every site of every license and runs an iterative Vincenty
//! solve per site; this index makes the common case sublinear and
//! trig-free:
//!
//! * Every site is bucketed once, at insert time, into a fixed
//!   [`CELL_DEG`]-degree lat/lon grid cell, alongside its precomputed
//!   [`UnitEcef`] unit vector.
//! * A query walks only the cells intersecting a conservative bounding
//!   box of the query circle (expanded by the kernel's
//!   [`RadiusTest::prefilter_radius_m`] guard band and by one cell of
//!   margin on every side), testing each candidate site with the
//!   dot-product fast path of [`RadiusTest::contains_vec`].
//! * Queries whose bounding box cannot be bounded tightly — planet-scale
//!   radii or circles reaching toward a pole, where the longitude span
//!   of a spherical cap degenerates — fall back to scanning every
//!   bucketed site. The fallback still skips per-site trig; only the
//!   cell pruning is lost.
//!
//! Results are license *indices* in ascending insertion order, so portal
//! search results are byte-identical to the linear scan's.

use hft_geodesy::{LatLon, RadiusTest, UnitEcef, EARTH_RADIUS_M};
use std::collections::HashMap;

/// Grid cell edge, degrees. 0.25° ≈ 28 km of latitude — a few cells
/// cover the paper's 10 km scrape radius, while the whole grid stays
/// coarse enough that corpus-scale inserts touch few distinct cells.
pub const CELL_DEG: f64 = 0.25;

/// Longitude cells around a full circle (360° / [`CELL_DEG`]).
const LON_CELLS: i64 = (360.0 / CELL_DEG) as i64;

/// Angular query radius, degrees, beyond which cell pruning is pointless
/// and the index scans all sites instead (≈ 1,700 km — the corpus
/// corridor fits many times over).
const MAX_PRUNED_RADIUS_DEG: f64 = 15.0;

/// Queries whose circle reaches above this absolute latitude fall back
/// to a full scan: the longitude extent of a spherical cap grows without
/// bound near the poles.
const MAX_PRUNED_LAT_DEG: f64 = 88.0;

/// One bucketed tower site.
///
/// `PartialEq` is exact (bit-level on the precomputed vector): two indices
/// compare equal only when built from identical coordinates through the
/// same [`UnitEcef::from_latlon`] — which is what the ingest applier's
/// incremental-vs-rebuild verification needs.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SiteEntry {
    /// Index of the owning license in the portal's insertion order.
    license: usize,
    /// Precomputed unit vector for the dot-product fast path.
    vec: UnitEcef,
    /// Exact coordinate, for the guard-band Vincenty confirmation.
    position: LatLon,
}

/// An equirectangular lat/lon bucket grid over tower sites, keyed by
/// license index.
///
/// Built incrementally by [`crate::UlsDatabase::insert`]; queried through
/// [`SiteIndex::matching_licenses`] with a [`RadiusTest`] so the radius
/// semantics (inclusive bound, ellipsoid guard band) live in one place —
/// the geodesy kernel.
/// Each cell's entry vector is kept ordered by `(license, arrival)`:
/// [`SiteIndex::insert`] places new entries after every entry with a
/// license index `<=` theirs. Bulk builds insert licenses in ascending
/// order, so the common case is a plain append; the ordering only does
/// work when the ingest applier re-inserts a replaced license's sites,
/// and it is what makes an incrementally-maintained index compare equal
/// (`PartialEq`) to one rebuilt from scratch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteIndex {
    cells: HashMap<(i32, i32), Vec<SiteEntry>>,
    site_count: usize,
}

/// The grid cell covering `position` — the same quantization the
/// bucket grid uses at insert time, exposed so corpus partitioning
/// ([`crate::shard`]) can anchor licensees to the cells geographic
/// queries walk.
pub fn cell_of(position: &LatLon) -> (i32, i32) {
    (lat_cell(position.lat_deg()), lon_cell(position.lon_deg()))
}

/// Latitude cell of a coordinate (well-defined for `lat ∈ [-90, 90]`).
fn lat_cell(lat_deg: f64) -> i32 {
    ((lat_deg + 90.0) / CELL_DEG).floor() as i32
}

/// Longitude cell of a coordinate, wrapped onto `[0, LON_CELLS)` so
/// ±180° land in the same cell.
fn lon_cell(lon_deg: f64) -> i32 {
    let raw = (lon_deg / CELL_DEG).floor() as i64;
    (raw.rem_euclid(LON_CELLS)) as i32
}

impl SiteIndex {
    /// An empty index.
    pub fn new() -> SiteIndex {
        SiteIndex::default()
    }

    /// Number of bucketed sites (licenses contribute one entry per
    /// tx/rx site, not one per license).
    pub fn site_count(&self) -> usize {
        self.site_count
    }

    /// Number of non-empty grid cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Bucket one site of license `license`.
    ///
    /// The entry is placed after every existing entry whose license index
    /// is `<=` `license`, keeping each cell ordered by `(license,
    /// arrival)`. Ascending bulk builds hit the append fast path.
    pub fn insert(&mut self, license: usize, position: &LatLon) {
        let entry = SiteEntry {
            license,
            vec: UnitEcef::from_latlon(position),
            position: *position,
        };
        let key = (lat_cell(position.lat_deg()), lon_cell(position.lon_deg()));
        let cell = self.cells.entry(key).or_default();
        if cell.last().is_some_and(|e| e.license > license) {
            let pos = cell.partition_point(|e| e.license <= license);
            cell.insert(pos, entry);
        } else {
            cell.push(entry);
        }
        self.site_count += 1;
    }

    /// Drop every entry owned by `license` from the cells covering
    /// `positions` (the license's own site list).
    ///
    /// Emptied cells are removed so the incrementally-maintained index
    /// stays structurally identical to a from-scratch rebuild. Returns the
    /// number of entries removed.
    pub fn remove_license(&mut self, license: usize, positions: &[LatLon]) -> usize {
        let mut removed = 0;
        let mut keys: Vec<(i32, i32)> = positions
            .iter()
            .map(|p| (lat_cell(p.lat_deg()), lon_cell(p.lon_deg())))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            if let Some(cell) = self.cells.get_mut(&key) {
                let before = cell.len();
                cell.retain(|e| e.license != license);
                removed += before - cell.len();
                if cell.is_empty() {
                    self.cells.remove(&key);
                }
            }
        }
        self.site_count -= removed;
        removed
    }

    /// License indices with any bucketed site inside `test`, ascending.
    ///
    /// `n_licenses` is the portal's license count (bounds the dedup
    /// marks; every bucketed `license` index must be below it).
    pub fn matching_licenses(&self, test: &RadiusTest, n_licenses: usize) -> Vec<usize> {
        let mut marks = vec![false; n_licenses];
        let mut hits = Vec::new();
        let radius_deg = (test.prefilter_radius_m() / EARTH_RADIUS_M).to_degrees();
        let lat = test.center().lat_deg();
        if radius_deg > MAX_PRUNED_RADIUS_DEG || lat.abs() + radius_deg >= MAX_PRUNED_LAT_DEG {
            for entry in self.cells.values().flatten() {
                Self::check(entry, test, &mut marks, &mut hits);
            }
        } else {
            self.pruned_scan(test, lat, radius_deg, &mut marks, &mut hits);
        }
        hits.sort_unstable();
        hits
    }

    /// Walk only the cells intersecting the query circle's bounding box.
    ///
    /// Preconditions (enforced by the caller): `radius_deg` is at most
    /// [`MAX_PRUNED_RADIUS_DEG`] and `|lat| + radius_deg` stays below
    /// [`MAX_PRUNED_LAT_DEG`], so the cap's longitude half-width
    /// `asin(sin θ / cos φ)` is well-defined.
    fn pruned_scan(
        &self,
        test: &RadiusTest,
        lat: f64,
        radius_deg: f64,
        marks: &mut [bool],
        hits: &mut Vec<usize>,
    ) {
        let lon = test.center().lon_deg();
        // Longitude half-width of the spherical cap: the meridian through
        // a cap point at latitude φ is offset from the center's by at
        // most asin(sin θ / cos φ_center) while the cap avoids the poles.
        let sin_theta = radius_deg.to_radians().sin();
        let dlon_deg = (sin_theta / lat.to_radians().cos())
            .clamp(-1.0, 1.0)
            .asin()
            .to_degrees();
        // ±1 cell of margin on every side absorbs edge rounding.
        let lat_lo = lat_cell((lat - radius_deg).max(-90.0)) - 1;
        let lat_hi = lat_cell((lat + radius_deg).min(90.0)) + 1;
        let lon_lo = ((lon - dlon_deg) / CELL_DEG).floor() as i64 - 1;
        let lon_hi = ((lon + dlon_deg) / CELL_DEG).floor() as i64 + 1;
        for lat_c in lat_lo..=lat_hi {
            if lon_hi - lon_lo + 1 >= LON_CELLS {
                for lon_c in 0..LON_CELLS as i32 {
                    self.check_cell((lat_c, lon_c), test, marks, hits);
                }
            } else {
                for lon_raw in lon_lo..=lon_hi {
                    let lon_c = lon_raw.rem_euclid(LON_CELLS) as i32;
                    self.check_cell((lat_c, lon_c), test, marks, hits);
                }
            }
        }
    }

    fn check_cell(
        &self,
        key: (i32, i32),
        test: &RadiusTest,
        marks: &mut [bool],
        hits: &mut Vec<usize>,
    ) {
        if let Some(entries) = self.cells.get(&key) {
            for entry in entries {
                Self::check(entry, test, marks, hits);
            }
        }
    }

    fn check(entry: &SiteEntry, test: &RadiusTest, marks: &mut [bool], hits: &mut Vec<usize>) {
        if !marks[entry.license] && test.contains_vec(&entry.vec, &entry.position) {
            marks[entry.license] = true;
            hits.push(entry.license);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hft_geodesy::gc_destination;

    fn p(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    #[test]
    fn lon_cells_wrap_at_antimeridian() {
        assert_eq!(lon_cell(180.0), lon_cell(-180.0));
        assert_eq!(lon_cell(-180.0), lon_cell(-179.999));
        assert_ne!(lon_cell(179.999), lon_cell(-179.999));
    }

    #[test]
    fn lat_cells_cover_the_poles() {
        assert_eq!(lat_cell(-90.0), 0);
        assert!(lat_cell(90.0) >= lat_cell(89.999));
    }

    #[test]
    fn finds_sites_in_radius_and_dedups_licenses() {
        let mut idx = SiteIndex::new();
        let center = p(41.7625, -88.171233);
        // License 0: both endpoints near the center.
        idx.insert(0, &gc_destination(&center, 45.0, 3_000.0));
        idx.insert(0, &gc_destination(&center, 225.0, 4_000.0));
        // License 1: one endpoint in, one far out.
        idx.insert(1, &gc_destination(&center, 90.0, 9_000.0));
        idx.insert(1, &gc_destination(&center, 90.0, 90_000.0));
        // License 2: both out.
        idx.insert(2, &gc_destination(&center, 0.0, 50_000.0));
        idx.insert(2, &gc_destination(&center, 10.0, 60_000.0));
        let test = RadiusTest::new(&center, 10_000.0);
        assert_eq!(idx.matching_licenses(&test, 3), vec![0, 1]);
        assert_eq!(idx.site_count(), 6);
    }

    #[test]
    fn antimeridian_query_catches_both_sides() {
        let mut idx = SiteIndex::new();
        idx.insert(0, &p(10.0, 179.98));
        idx.insert(1, &p(10.0, -179.98));
        idx.insert(2, &p(10.0, 178.0));
        let test = RadiusTest::new(&p(10.0, 179.999), 10_000.0);
        assert_eq!(idx.matching_licenses(&test, 3), vec![0, 1]);
    }

    #[test]
    fn near_pole_query_falls_back_to_full_scan() {
        let mut idx = SiteIndex::new();
        idx.insert(0, &p(89.5, 0.0));
        idx.insert(1, &p(89.5, 180.0)); // ~111 km across the pole
        idx.insert(2, &p(80.0, 0.0));
        let test = RadiusTest::new(&p(89.9, 0.0), 150_000.0);
        assert_eq!(idx.matching_licenses(&test, 3), vec![0, 1]);
    }

    #[test]
    fn planet_scale_radius_returns_everything() {
        let mut idx = SiteIndex::new();
        for (i, lat) in [-80.0, -10.0, 0.0, 45.0, 89.0].iter().enumerate() {
            idx.insert(i, &p(*lat, 30.0 * i as f64));
        }
        let test = RadiusTest::new(&p(0.0, 0.0), 25_000_000.0);
        assert!(test.prefilter_radius_m() > 21_000_000.0);
        assert_eq!(idx.matching_licenses(&test, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn out_of_order_insert_matches_ascending_build() {
        let site_a = p(41.0, -88.0);
        let site_b = p(41.001, -88.001); // same 0.25° cell as site_a
        let site_c = p(45.0, -80.0);
        let mut ascending = SiteIndex::new();
        ascending.insert(0, &site_a);
        ascending.insert(1, &site_b);
        ascending.insert(1, &site_c);
        ascending.insert(2, &site_a);
        // Insert license 1 last: the ordered insert must splice it between
        // licenses 0 and 2 inside the shared cell.
        let mut shuffled = SiteIndex::new();
        shuffled.insert(0, &site_a);
        shuffled.insert(2, &site_a);
        shuffled.insert(1, &site_b);
        shuffled.insert(1, &site_c);
        assert_eq!(ascending, shuffled);
    }

    #[test]
    fn remove_license_restores_prior_index() {
        let site_a = p(41.0, -88.0);
        let site_b = p(42.0, -87.0);
        let mut base = SiteIndex::new();
        base.insert(0, &site_a);
        let mut grown = base.clone();
        grown.insert(1, &site_a);
        grown.insert(1, &site_b);
        assert_eq!(grown.remove_license(1, &[site_a, site_b]), 2);
        assert_eq!(grown, base);
        assert_eq!(grown.site_count(), 1);
        // Removing the last entry of a cell drops the cell itself.
        assert_eq!(grown.cell_count(), base.cell_count());
    }

    #[test]
    fn empty_index_is_empty() {
        let idx = SiteIndex::new();
        let test = RadiusTest::new(&p(41.0, -88.0), 10_000.0);
        assert!(idx.matching_licenses(&test, 0).is_empty());
        assert_eq!(idx.site_count(), 0);
        assert_eq!(idx.cell_count(), 0);
    }
}
