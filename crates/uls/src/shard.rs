//! Deterministic corpus partitioning for the sharded serving fleet.
//!
//! A fleet splits one [`UlsDatabase`] into N disjoint shard corpora so
//! each shard worker answers over its own piece. Both strategies
//! partition at **licensee granularity** — every license filed under a
//! name lands on that name's shard — because the query surface is
//! licensee-shaped on both ends:
//!
//! * single-licensee requests (network, route, APA, weather) are
//!   answerable by exactly one shard, and
//! * the §2.2 funnel counts *licensees*, so per-shard funnel counters
//!   sum to the single-corpus counters without double counting.
//!
//! Assignment must be a pure function of the corpus (no `RandomState`,
//! no iteration-order dependence): the router, the load generator and
//! the ingest publisher all recompute it independently and must agree,
//! across processes and across runs.

use crate::license::License;
use crate::portal::UlsDatabase;
use crate::siteindex::cell_of;
use std::collections::HashMap;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` — the fleet's stable hash. Unlike
/// `std::collections` hashing it is fixed across builds, processes and
/// platforms, which is what lets a client attribute a request to a
/// shard without asking the router.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// How licensees are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Hash of the filed licensee name, modulo the shard count. Routing
    /// a single-licensee request is a pure function of the name — one
    /// hop, no corpus lookup — so this is the default.
    LicenseeHash,
    /// Hash of the licensee's *anchor cell*: the minimum [`cell_of`]
    /// grid cell over every tower site the licensee files. Licensees
    /// operating in the same corner of the map co-locate, which keeps
    /// geographic scatter answers concentrated on few shards; the cost
    /// is that name-only routing no longer knows the owner, so
    /// single-licensee requests broadcast. Licensees with no sites fall
    /// back to the name hash.
    SpatialCell,
}

impl ShardStrategy {
    /// Parse a CLI/wire strategy name.
    pub fn parse(s: &str) -> Option<ShardStrategy> {
        match s {
            "licensee" => Some(ShardStrategy::LicenseeHash),
            "spatial" => Some(ShardStrategy::SpatialCell),
            _ => None,
        }
    }

    /// The CLI/wire name.
    pub fn name(&self) -> &'static str {
        match self {
            ShardStrategy::LicenseeHash => "licensee",
            ShardStrategy::SpatialCell => "spatial",
        }
    }

    /// Whether the owning shard of a licensee is computable from the
    /// name alone (point-to-point routing) or requires the corpus
    /// (broadcast routing).
    pub fn routes_by_name(&self) -> bool {
        matches!(self, ShardStrategy::LicenseeHash)
    }
}

/// Murmur3's 64-bit finalizer (`fmix64`): a bijective avalanche mix
/// applied on top of [`fnv1a`] before the modulo reduction. FNV-1a is a
/// fine identity hash but avalanches poorly — similar short ASCII keys
/// cluster modulo small shard counts, which showed up as dead shards in
/// the fleet bench. Every output bit of the finalizer depends on every
/// input bit, so the low-bit reduction sees the whole key; bijective
/// means no entropy is lost on top of FNV-1a itself.
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// The owning shard of `licensee` under [`ShardStrategy::LicenseeHash`].
///
/// # Panics
/// Panics when `shards` is zero.
pub fn shard_of_licensee(licensee: &str, shards: usize) -> u32 {
    assert!(shards > 0, "shard count must be at least 1");
    (mix64(fnv1a(licensee.as_bytes())) % shards as u64) as u32
}

/// The owning shard of an anchor grid cell under
/// [`ShardStrategy::SpatialCell`].
fn shard_of_cell(cell: (i32, i32), shards: usize) -> u32 {
    let mut bytes = [0u8; 8];
    bytes[..4].copy_from_slice(&cell.0.to_le_bytes());
    bytes[4..].copy_from_slice(&cell.1.to_le_bytes());
    (mix64(fnv1a(&bytes)) % shards as u64) as u32
}

/// A corpus split into per-shard corpora plus the licensee→shard map
/// that produced it.
#[derive(Debug)]
pub struct Partition {
    /// One corpus per shard. Within each shard, licenses keep their
    /// relative corpus insertion order.
    pub shards: Vec<UlsDatabase>,
    /// Every licensee name in the source corpus → its owning shard.
    pub assignment: HashMap<String, u32>,
}

/// Split `db` into `shards` disjoint corpora under `strategy`.
///
/// Deterministic: the same corpus, shard count and strategy always
/// produce the same partition, and the union of the shard corpora is
/// exactly the source corpus (each license appears on exactly one
/// shard — its licensee's).
///
/// # Panics
/// Panics when `shards` is zero.
pub fn partition(db: &UlsDatabase, shards: usize, strategy: ShardStrategy) -> Partition {
    assert!(shards > 0, "shard count must be at least 1");
    let assignment = assign(db, shards, strategy);
    let mut lists: Vec<Vec<License>> = (0..shards).map(|_| Vec::new()).collect();
    for lic in db.licenses() {
        let shard = assignment[&lic.licensee];
        lists[shard as usize].push(lic.clone());
    }
    Partition {
        shards: lists.into_iter().map(UlsDatabase::from_licenses).collect(),
        assignment,
    }
}

/// The licensee→shard map for `db` under `strategy`, without building
/// the shard corpora.
pub fn assign(db: &UlsDatabase, shards: usize, strategy: ShardStrategy) -> HashMap<String, u32> {
    assert!(shards > 0, "shard count must be at least 1");
    match strategy {
        ShardStrategy::LicenseeHash => db
            .licensees()
            .into_iter()
            .map(|name| (name.to_string(), shard_of_licensee(name, shards)))
            .collect(),
        ShardStrategy::SpatialCell => {
            // Anchor = minimum grid cell across every site the licensee
            // files, scanned in corpus order. The min is order-free, so
            // the anchor is a pure function of the license set.
            let mut anchors: HashMap<&str, Option<(i32, i32)>> = HashMap::new();
            for lic in db.licenses() {
                let anchor = anchors.entry(lic.licensee.as_str()).or_insert(None);
                for site in lic.sites() {
                    let cell = cell_of(&site.position);
                    if anchor.is_none_or(|a| cell < a) {
                        *anchor = Some(cell);
                    }
                }
            }
            anchors
                .into_iter()
                .map(|(name, anchor)| {
                    let shard = match anchor {
                        Some(cell) => shard_of_cell(cell, shards),
                        None => shard_of_licensee(name, shards),
                    };
                    (name.to_string(), shard)
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::license::{
        CallSign, FrequencyAssignment, LicenseId, MicrowavePath, RadioService, StationClass,
        TowerSite,
    };
    use crate::portal::UlsPortal;
    use hft_geodesy::LatLon;
    use hft_time::Date;

    fn lic(id: u64, name: &str, lat: f64, lon: f64) -> License {
        License {
            id: LicenseId(id),
            call_sign: CallSign(format!("WQ{id:05}")),
            licensee: name.into(),
            service: RadioService::MG,
            station_class: StationClass::FXO,
            grant_date: Date::new(2015, 1, 1).unwrap(),
            termination_date: None,
            cancellation_date: None,
            paths: vec![MicrowavePath {
                tx: TowerSite::at(LatLon::new(lat, lon).unwrap()),
                rx: TowerSite::at(LatLon::new(lat + 0.2, lon + 0.3).unwrap()),
                frequencies: vec![FrequencyAssignment { center_hz: 6.1e9 }],
            }],
        }
    }

    fn corpus() -> UlsDatabase {
        UlsDatabase::from_licenses(vec![
            lic(1, "Alpha Networks", 41.0, -88.0),
            lic(2, "Beta Microwave", 41.5, -87.5),
            lic(3, "Alpha Networks", 42.0, -86.0),
            lic(4, "Gamma Wireless", 40.0, -80.0),
            lic(5, "Beta Microwave", 39.5, -84.5),
        ])
    }

    #[test]
    fn fnv1a_is_the_reference_function() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn licensee_hash_avalanches_across_small_fleets() {
        // Regression guard for the finalizer: short keys differing only
        // in trailing characters (the shape of real licensee rosters)
        // must not stripe any shard empty. Raw FNV-1a mod 8 left two of
        // eight shards without a single licensee on the corridor corpus.
        let names: Vec<String> = (0..64).map(|i| format!("Licensee {i:02}")).collect();
        for n in 2..=8 {
            let mut hit = vec![false; n];
            for name in &names {
                hit[shard_of_licensee(name, n) as usize] = true;
            }
            assert!(hit.iter().all(|&h| h), "empty shard at n={n}: {hit:?}");
        }
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // The finalizer must not lose entropy on top of FNV-1a: spot
        // check injectivity and non-identity on a spread of inputs.
        let inputs: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let mut outputs: Vec<u64> = inputs.iter().map(|&h| mix64(h)).collect();
        outputs.sort_unstable();
        outputs.dedup();
        assert_eq!(outputs.len(), inputs.len());
        assert_ne!(mix64(1), 1);
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [ShardStrategy::LicenseeHash, ShardStrategy::SpatialCell] {
            assert_eq!(ShardStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(ShardStrategy::parse("bogus"), None);
        assert!(ShardStrategy::LicenseeHash.routes_by_name());
        assert!(!ShardStrategy::SpatialCell.routes_by_name());
    }

    #[test]
    fn every_license_lands_on_exactly_one_shard() {
        let db = corpus();
        for strategy in [ShardStrategy::LicenseeHash, ShardStrategy::SpatialCell] {
            for n in 1..=6 {
                let part = partition(&db, n, strategy);
                assert_eq!(part.shards.len(), n);
                let total: usize = part.shards.iter().map(|s| s.len()).sum();
                assert_eq!(total, db.len(), "{strategy:?} n={n}");
                // Disjoint: each id appears in exactly one shard corpus.
                for l in db.licenses() {
                    let holders = part
                        .shards
                        .iter()
                        .filter(|s| s.license_detail(l.id).is_some())
                        .count();
                    assert_eq!(holders, 1, "{strategy:?} n={n} id={}", l.id);
                }
            }
        }
    }

    #[test]
    fn licensees_are_never_split_across_shards() {
        let db = corpus();
        for strategy in [ShardStrategy::LicenseeHash, ShardStrategy::SpatialCell] {
            let part = partition(&db, 4, strategy);
            for shard in &part.shards {
                for l in shard.licenses() {
                    assert_eq!(part.assignment[&l.licensee] as usize, shard_index(&part, l));
                }
            }
            // All of a licensee's filings are on their one shard.
            for name in db.licensees() {
                let shard = &part.shards[part.assignment[name] as usize];
                assert_eq!(
                    shard.licensee_search(name).len(),
                    db.licensee_search(name).len(),
                    "{strategy:?} {name}"
                );
            }
        }
    }

    fn shard_index(part: &Partition, l: &License) -> usize {
        part.shards
            .iter()
            .position(|s| s.license_detail(l.id).is_some())
            .unwrap()
    }

    #[test]
    fn single_shard_partition_is_the_identity() {
        let db = corpus();
        for strategy in [ShardStrategy::LicenseeHash, ShardStrategy::SpatialCell] {
            let part = partition(&db, 1, strategy);
            assert_eq!(part.shards[0], db, "{strategy:?}");
        }
    }

    #[test]
    fn assignment_is_deterministic() {
        let db = corpus();
        for strategy in [ShardStrategy::LicenseeHash, ShardStrategy::SpatialCell] {
            let a = assign(&db, 8, strategy);
            let b = assign(&db, 8, strategy);
            assert_eq!(a, b);
        }
        // Name routing matches the partition's assignment.
        let part = partition(&db, 8, ShardStrategy::LicenseeHash);
        for name in db.licensees() {
            assert_eq!(part.assignment[name], shard_of_licensee(name, 8));
        }
    }

    #[test]
    fn spatial_cells_co_locate_nearby_licensees() {
        // Two licensees whose towers share a 0.25° cell must land on the
        // same shard under the spatial strategy, for any shard count.
        let db = UlsDatabase::from_licenses(vec![
            lic(1, "East Tower Co", 41.01, -88.01),
            lic(2, "West Tower Co", 41.02, -88.02),
        ]);
        for n in 1..=7 {
            let a = assign(&db, n, ShardStrategy::SpatialCell);
            assert_eq!(a["East Tower Co"], a["West Tower Co"], "n={n}");
        }
    }
}
