//! # hft-uls
//!
//! A faithful, offline stand-in for the FCC Universal Licensing System
//! (ULS) as the IMC'20 paper uses it. The paper's methodology (§2) is a
//! sequence of *queries* over license records — geographic radius search,
//! site-based filtering on radio service code `MG` and station class
//! `FXO`, per-licensee license listing, and per-license detail pages —
//! followed by a filtering funnel (57 geographic candidates → 29
//! licensees with ≥ 11 filings). This crate provides:
//!
//! * [`License`] and friends — the record schema (grant/cancellation/
//!   termination dates, transmitter and receiver tower coordinates with
//!   ground elevation and structure height, per-path operating
//!   frequencies);
//! * [`flatfile`] — a pipe-delimited flat-file codec modeled on the real
//!   ULS daily-dump record types (`HD`, `EN`, `LO`, `PA`, `FR`), so
//!   datasets can be exported, versioned and re-imported;
//! * [`UlsDatabase`] — an in-memory portal implementing the
//!   [`UlsPortal`] search interfaces the paper drives over HTTP, backed
//!   by a [`SiteIndex`] bucket grid (geographic searches visit only
//!   candidate cells) and a service/class index (site searches stop
//!   scanning the corpus);
//! * [`scrape`] — the paper's §2.2 pipeline, producing both the candidate
//!   licensee set and a [`scrape::FunnelReport`] with the funnel counts.
//!
//! ```
//! use hft_uls::flatfile;
//!
//! let text = "\
//! HD|7|WQ00007|MG|FXO|06/17/2015||
//! EN|7|Example Networks
//! LO|7|1|41-45-45.0 N|88-10-16.4 W|230.0|110.0
//! LO|7|2|41-42-00.0 N|87-36-00.0 W|221.0|95.0
//! PA|7|1|1|2
//! FR|7|1|6175.00000
//! ";
//! let licenses = flatfile::decode(text).unwrap();
//! assert_eq!(licenses.len(), 1);
//! assert_eq!(licenses[0].licensee, "Example Networks");
//! assert!((licenses[0].paths[0].length_km() - 48.0).abs() < 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flatfile;
mod license;
mod portal;
pub mod scrape;
pub mod shard;
mod siteindex;

pub use license::{
    CallSign, FrequencyAssignment, License, LicenseId, LicenseStatus, MicrowavePath, RadioService,
    StationClass, TowerSite,
};
pub use portal::{UlsDatabase, UlsPortal};
pub use shard::{Partition, ShardStrategy};
pub use siteindex::{cell_of, SiteIndex, CELL_DEG};
