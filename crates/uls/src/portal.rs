//! The simulated ULS portal: the four search interfaces of §2.1.

use crate::license::{License, LicenseId, RadioService, StationClass};
use crate::siteindex::SiteIndex;
use hft_geodesy::{LatLon, RadiusTest};
use hft_time::Date;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// The search interfaces the FCC Universal Licensing System exposes and
/// the paper's scraper drives (§2.1): geographic, site-based, by licensee
/// name, and by license id.
///
/// Implemented by [`UlsDatabase`]; defined as a trait to document the
/// substitution boundary — the paper's tool talks to these interfaces
/// over HTTP, ours talks to an in-memory corpus.
pub trait UlsPortal {
    /// Licenses with any site within `radius_km` of `center`
    /// (the "Geographic Search").
    fn geographic_search(&self, center: &LatLon, radius_km: f64) -> Vec<&License>;

    /// Licenses matching a radio service code and station class
    /// (the "Site License Search").
    fn site_search(&self, service: &RadioService, class: &StationClass) -> Vec<&License>;

    /// Licenses filed by `licensee` (exact name match, the "Basic Search").
    fn licensee_search(&self, licensee: &str) -> Vec<&License>;

    /// Full detail for one license (the "License Search" detail page).
    fn license_detail(&self, id: LicenseId) -> Option<&License>;
}

/// In-memory license corpus with the [`UlsPortal`] interfaces plus a few
/// bulk accessors used by reconstruction.
///
/// Searches are index-backed: geographic queries walk a [`SiteIndex`]
/// bucket grid instead of the whole corpus, site searches hit a
/// `(service, class)` index, and the sorted licensee-name list is
/// maintained incrementally on insert. The un-indexed scans survive as
/// [`UlsDatabase::geographic_search_linear`] and
/// [`UlsDatabase::site_search_linear`] — the reference implementations
/// the property tests and benches compare against.
///
/// `PartialEq` compares the license list *and every secondary index*
/// structurally: an incrementally-mutated database (see
/// [`UlsDatabase::extend`], [`UlsDatabase::replace`]) equals
/// [`UlsDatabase::from_licenses`] of the same license sequence only when
/// all index maintenance was exact — which is precisely the check the
/// ingest applier's verification rebuild performs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UlsDatabase {
    licenses: Vec<License>,
    by_id: HashMap<LicenseId, usize>,
    by_licensee: HashMap<String, Vec<usize>>,
    /// Distinct licensee names, kept sorted on insert so
    /// [`UlsDatabase::licensees`] (called per evolution date) does not
    /// re-collect and re-sort the corpus every time.
    licensee_names: Vec<String>,
    /// `(service, class) → license indices` in insertion order.
    by_service_class: HashMap<(RadioService, StationClass), Vec<usize>>,
    /// `call sign → license indices`, ascending. Call signs are unique in
    /// a real ULS corpus, but the index tolerates duplicates (the delta
    /// codec keys transactions by call sign and must resolve the latest
    /// filing deterministically — see [`UlsDatabase::find_call_sign`]).
    by_call_sign: HashMap<String, Vec<usize>>,
    /// Bucket grid over every tx/rx tower site.
    sites: SiteIndex,
}

impl UlsDatabase {
    /// An empty database.
    pub fn new() -> UlsDatabase {
        UlsDatabase::default()
    }

    /// Build from a license list.
    ///
    /// # Panics
    /// Panics on duplicate license ids — a corpus invariant violation.
    pub fn from_licenses(licenses: Vec<License>) -> UlsDatabase {
        let mut db = UlsDatabase::new();
        db.extend(licenses);
        db
    }

    /// Insert one license.
    ///
    /// # Panics
    /// Panics when the id is already present.
    pub fn insert(&mut self, license: License) {
        self.insert_deferred(license, None);
    }

    /// Bulk-load fast path: insert every license, deferring maintenance of
    /// the sorted licensee-name cache to the end of the batch.
    ///
    /// [`UlsDatabase::insert`] pays a `binary_search` + `Vec::insert` (a
    /// memmove of the whole tail) per *new* licensee name; corpus-scale
    /// builds introduce thousands of names, so the per-insert path is
    /// quadratic in the name count. Here new names are appended to a side
    /// list and merged with one sort at batch end. The result is
    /// indistinguishable (`==`) from per-insert loading.
    ///
    /// # Panics
    /// Panics on duplicate license ids, like [`UlsDatabase::insert`].
    pub fn extend(&mut self, licenses: impl IntoIterator<Item = License>) {
        let mut new_names: Vec<String> = Vec::new();
        for lic in licenses {
            self.insert_deferred(lic, Some(&mut new_names));
        }
        if !new_names.is_empty() {
            self.licensee_names.append(&mut new_names);
            self.licensee_names.sort_unstable();
        }
    }

    /// Shared insert body. With `deferred_names: Some(..)`, first filings
    /// push their name onto the side list instead of paying the sorted
    /// insert; the caller owns the batch-end merge.
    fn insert_deferred(&mut self, license: License, deferred_names: Option<&mut Vec<String>>) {
        let idx = self.licenses.len();
        let prev = self.by_id.insert(license.id, idx);
        assert!(prev.is_none(), "duplicate license id {}", license.id);
        match self.by_licensee.entry(license.licensee.clone()) {
            Entry::Occupied(e) => e.into_mut().push(idx),
            Entry::Vacant(e) => {
                // First filing under this name (names are distinct here by
                // construction): defer to the batch merge, or slot it into
                // the sorted name cache right away.
                match deferred_names {
                    Some(names) => names.push(license.licensee.clone()),
                    None => {
                        let pos = self
                            .licensee_names
                            .binary_search(&license.licensee)
                            .unwrap_err();
                        self.licensee_names.insert(pos, license.licensee.clone());
                    }
                }
                e.insert(vec![idx]);
            }
        }
        self.by_service_class
            .entry((license.service.clone(), license.station_class.clone()))
            .or_default()
            .push(idx);
        self.by_call_sign
            .entry(license.call_sign.0.clone())
            .or_default()
            .push(idx);
        for site in license.sites() {
            self.sites.insert(idx, &site.position);
        }
        self.licenses.push(license);
    }

    /// Replace the license at corpus position `idx` in place, repairing
    /// every secondary index incrementally — no rebuild.
    ///
    /// Index vectors stay in ascending position order (entries are
    /// re-inserted at their sorted slot), so the result is `==` to
    /// [`UlsDatabase::from_licenses`] over the updated license sequence.
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds, or when the replacement's id
    /// collides with a *different* license (changing the id of slot `idx`
    /// itself is allowed).
    pub fn replace(&mut self, idx: usize, license: License) {
        assert!(idx < self.licenses.len(), "replace index out of bounds");
        let old = &self.licenses[idx];
        let old_id = old.id;
        let old_call = old.call_sign.0.clone();
        let old_licensee = old.licensee.clone();
        let old_key = (old.service.clone(), old.station_class.clone());
        let old_positions: Vec<LatLon> = old.sites().map(|s| s.position).collect();

        if old_id != license.id {
            self.by_id.remove(&old_id);
            let prev = self.by_id.insert(license.id, idx);
            assert!(prev.is_none(), "duplicate license id {}", license.id);
        }
        if old_call != license.call_sign.0 {
            Self::index_remove(&mut self.by_call_sign, &old_call, idx);
            Self::index_add(&mut self.by_call_sign, &license.call_sign.0, idx);
        }
        if old_licensee != license.licensee {
            if Self::index_remove(&mut self.by_licensee, &old_licensee, idx) {
                // Last filing under the old name: drop it from the sorted
                // name cache too.
                if let Ok(pos) = self.licensee_names.binary_search(&old_licensee) {
                    self.licensee_names.remove(pos);
                }
            }
            if Self::index_add(&mut self.by_licensee, &license.licensee, idx) {
                let pos = self
                    .licensee_names
                    .binary_search(&license.licensee)
                    .unwrap_err();
                self.licensee_names.insert(pos, license.licensee.clone());
            }
        }
        let new_key = (license.service.clone(), license.station_class.clone());
        if old_key != new_key {
            Self::index_remove(&mut self.by_service_class, &old_key, idx);
            Self::index_add(&mut self.by_service_class, &new_key, idx);
        }
        self.sites.remove_license(idx, &old_positions);
        for site in license.sites() {
            self.sites.insert(idx, &site.position);
        }
        self.licenses[idx] = license;
    }

    /// Set (or clear) the cancellation date of the license at `idx`.
    ///
    /// Lifecycle dates are not indexed, so this is a plain field write —
    /// the cheap path for the delta codec's cancel transactions.
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds.
    pub fn set_cancellation(&mut self, idx: usize, date: Option<Date>) {
        self.licenses[idx].cancellation_date = date;
    }

    /// Corpus position of the latest filing under `call_sign`, if any.
    ///
    /// "Latest" is by corpus position — the most recently inserted
    /// license with that call sign wins, which is the resolution rule the
    /// delta codec documents for its call-sign-keyed transactions.
    pub fn find_call_sign(&self, call_sign: &str) -> Option<usize> {
        self.by_call_sign
            .get(call_sign)
            .and_then(|v| v.last())
            .copied()
    }

    /// Remove `idx` from the index vector at `key`; drops the entry when
    /// the vector empties. Returns `true` when the entry was dropped.
    fn index_remove<K, Q>(map: &mut HashMap<K, Vec<usize>>, key: &Q, idx: usize) -> bool
    where
        K: std::borrow::Borrow<Q> + std::hash::Hash + Eq,
        Q: std::hash::Hash + Eq + ?Sized,
    {
        let Some(v) = map.get_mut(key) else {
            return false;
        };
        v.retain(|&i| i != idx);
        if v.is_empty() {
            map.remove(key);
            true
        } else {
            false
        }
    }

    /// Insert `idx` into the index vector at `key` at its ascending slot.
    /// Returns `true` when the entry was newly created.
    fn index_add<K, Q>(map: &mut HashMap<K, Vec<usize>>, key: &Q, idx: usize) -> bool
    where
        K: std::borrow::Borrow<Q> + std::hash::Hash + Eq,
        Q: std::hash::Hash + Eq + ToOwned<Owned = K> + ?Sized,
    {
        match map.get_mut(key) {
            Some(v) => {
                let pos = v.partition_point(|&i| i < idx);
                v.insert(pos, idx);
                false
            }
            None => {
                map.insert(key.to_owned(), vec![idx]);
                true
            }
        }
    }

    /// Number of licenses.
    pub fn len(&self) -> usize {
        self.licenses.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.licenses.is_empty()
    }

    /// All licenses in insertion order.
    pub fn licenses(&self) -> &[License] {
        &self.licenses
    }

    /// All distinct licensee names, sorted.
    ///
    /// Served from a cache maintained on insert; no per-call sort.
    pub fn licensees(&self) -> Vec<&str> {
        self.licensee_names.iter().map(String::as_str).collect()
    }

    /// The tower-site bucket grid backing [`UlsPortal::geographic_search`].
    pub fn site_index(&self) -> &SiteIndex {
        &self.sites
    }

    /// Reference implementation of [`UlsPortal::geographic_search`]:
    /// the original full linear scan with one exact geodesic solve per
    /// tower site. Kept for the property tests (indexed and linear
    /// results must agree exactly) and as the bench baseline.
    pub fn geographic_search_linear(&self, center: &LatLon, radius_km: f64) -> Vec<&License> {
        let radius_m = radius_km * 1000.0;
        self.licenses
            .iter()
            .filter(|l| {
                l.sites()
                    .any(|s| s.position.geodesic_distance_m(center) <= radius_m)
            })
            .collect()
    }

    /// Reference implementation of [`UlsPortal::site_search`]: the
    /// original full scan over the corpus. Kept for the property tests
    /// and as the bench baseline.
    pub fn site_search_linear(
        &self,
        service: &RadioService,
        class: &StationClass,
    ) -> Vec<&License> {
        self.licenses
            .iter()
            .filter(|l| &l.service == service && &l.station_class == class)
            .collect()
    }
}

/// Cached handles for the portal's `uls.*` metrics, resolved once per
/// process so search hot paths never touch the registry mutex.
struct PortalMetrics {
    geo_searches: std::sync::Arc<hft_obs::Counter>,
    geo_ns: std::sync::Arc<hft_obs::Histogram>,
    site_searches: std::sync::Arc<hft_obs::Counter>,
    site_ns: std::sync::Arc<hft_obs::Histogram>,
}

fn portal_metrics() -> &'static PortalMetrics {
    static METRICS: std::sync::OnceLock<PortalMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = hft_obs::global();
        PortalMetrics {
            geo_searches: r.counter("uls.geographic_searches"),
            geo_ns: r.histogram("uls.geographic_search_ns"),
            site_searches: r.counter("uls.site_searches"),
            site_ns: r.histogram("uls.site_search_ns"),
        }
    })
}

impl UlsPortal for UlsDatabase {
    fn geographic_search(&self, center: &LatLon, radius_km: f64) -> Vec<&License> {
        let m = portal_metrics();
        m.geo_searches.incr();
        let started = std::time::Instant::now();
        let radius_m = radius_km * 1000.0;
        if !radius_m.is_finite() || radius_m < 0.0 {
            // Matches the scalar predicate, which no distance satisfies.
            return Vec::new();
        }
        let test = RadiusTest::new(center, radius_m);
        let hits: Vec<&License> = self
            .sites
            .matching_licenses(&test, self.licenses.len())
            .into_iter()
            .map(|i| &self.licenses[i])
            .collect();
        m.geo_ns.record(started.elapsed().as_nanos() as u64);
        hits
    }

    fn site_search(&self, service: &RadioService, class: &StationClass) -> Vec<&License> {
        let m = portal_metrics();
        m.site_searches.incr();
        let started = std::time::Instant::now();
        let hits: Vec<&License> = self
            .by_service_class
            .get(&(service.clone(), class.clone()))
            .map(|idxs| idxs.iter().map(|&i| &self.licenses[i]).collect())
            .unwrap_or_default();
        m.site_ns.record(started.elapsed().as_nanos() as u64);
        hits
    }

    fn licensee_search(&self, licensee: &str) -> Vec<&License> {
        self.by_licensee
            .get(licensee)
            .map(|idxs| idxs.iter().map(|&i| &self.licenses[i]).collect())
            .unwrap_or_default()
    }

    fn license_detail(&self, id: LicenseId) -> Option<&License> {
        self.by_id.get(&id).map(|&i| &self.licenses[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::license::{CallSign, FrequencyAssignment, MicrowavePath, TowerSite};
    use hft_time::Date;

    fn lic(id: u64, licensee: &str, service: RadioService, lat: f64, lon: f64) -> License {
        let tx = TowerSite::at(LatLon::new(lat, lon).unwrap());
        let rx = TowerSite::at(LatLon::new(lat + 0.2, lon + 0.5).unwrap());
        License {
            id: LicenseId(id),
            call_sign: CallSign(format!("WQ{id:05}")),
            licensee: licensee.into(),
            service,
            station_class: StationClass::FXO,
            grant_date: Date::new(2015, 1, 1).unwrap(),
            termination_date: None,
            cancellation_date: None,
            paths: vec![MicrowavePath {
                tx,
                rx,
                frequencies: vec![FrequencyAssignment { center_hz: 6.0e9 }],
            }],
        }
    }

    fn db() -> UlsDatabase {
        UlsDatabase::from_licenses(vec![
            lic(1, "Alpha", RadioService::MG, 41.76, -88.17),
            lic(2, "Alpha", RadioService::MG, 41.70, -87.60),
            lic(3, "Beta", RadioService::MG, 41.76, -88.18),
            lic(4, "Gamma", RadioService::CF, 41.76, -88.17),
            lic(5, "Delta", RadioService::MG, 35.00, -100.00),
        ])
    }

    #[test]
    fn geographic_search_radius() {
        let db = db();
        let cme = LatLon::new(41.7625, -88.171233).unwrap();
        let hits = db.geographic_search(&cme, 10.0);
        let ids: Vec<u64> = hits.iter().map(|l| l.id.0).collect();
        assert!(ids.contains(&1) && ids.contains(&3) && ids.contains(&4));
        assert!(!ids.contains(&5));
    }

    #[test]
    fn geographic_search_counts_rx_sites_too() {
        let db = db();
        // License 2's tx is ~50 km east of CME, but test around its rx site.
        let near_rx = LatLon::new(41.90, -87.10).unwrap();
        let hits = db.geographic_search(&near_rx, 15.0);
        assert!(hits.iter().any(|l| l.id.0 == 2));
    }

    #[test]
    fn site_search_filters_service() {
        let db = db();
        let hits = db.site_search(&RadioService::MG, &StationClass::FXO);
        assert_eq!(hits.len(), 4);
        assert!(hits.iter().all(|l| l.service == RadioService::MG));
    }

    #[test]
    fn licensee_search_exact() {
        let db = db();
        assert_eq!(db.licensee_search("Alpha").len(), 2);
        assert_eq!(db.licensee_search("Beta").len(), 1);
        assert!(
            db.licensee_search("alpha").is_empty(),
            "match is exact, like the ULS"
        );
        assert!(db.licensee_search("Nobody").is_empty());
    }

    #[test]
    fn license_detail_lookup() {
        let db = db();
        assert_eq!(db.license_detail(LicenseId(3)).unwrap().licensee, "Beta");
        assert!(db.license_detail(LicenseId(99)).is_none());
    }

    #[test]
    fn licensees_sorted_distinct() {
        let db = db();
        assert_eq!(db.licensees(), vec!["Alpha", "Beta", "Delta", "Gamma"]);
    }

    #[test]
    #[should_panic(expected = "duplicate license id")]
    fn duplicate_id_panics() {
        let mut db = db();
        db.insert(lic(1, "Dup", RadioService::MG, 41.0, -88.0));
    }

    #[test]
    fn empty_database() {
        let db = UlsDatabase::new();
        assert!(db.is_empty());
        assert_eq!(db.len(), 0);
        let cme = LatLon::new(41.76, -88.17).unwrap();
        assert!(db.geographic_search(&cme, 10.0).is_empty());
    }

    #[test]
    fn indexed_searches_match_linear_references() {
        let db = db();
        let cme = LatLon::new(41.7625, -88.171233).unwrap();
        for radius_km in [0.0, 1.0, 10.0, 60.0, 500.0, 25_000.0] {
            let indexed: Vec<u64> = db
                .geographic_search(&cme, radius_km)
                .iter()
                .map(|l| l.id.0)
                .collect();
            let linear: Vec<u64> = db
                .geographic_search_linear(&cme, radius_km)
                .iter()
                .map(|l| l.id.0)
                .collect();
            assert_eq!(indexed, linear, "radius {radius_km} km");
        }
        for service in [RadioService::MG, RadioService::CF, RadioService::AF] {
            let indexed: Vec<u64> = db
                .site_search(&service, &StationClass::FXO)
                .iter()
                .map(|l| l.id.0)
                .collect();
            let linear: Vec<u64> = db
                .site_search_linear(&service, &StationClass::FXO)
                .iter()
                .map(|l| l.id.0)
                .collect();
            assert_eq!(indexed, linear, "service {}", service.code());
        }
    }

    #[test]
    fn degenerate_radii_return_empty() {
        let db = db();
        let cme = LatLon::new(41.7625, -88.171233).unwrap();
        assert!(db.geographic_search(&cme, -1.0).is_empty());
        assert!(db.geographic_search(&cme, f64::NAN).is_empty());
        assert!(db.geographic_search_linear(&cme, -1.0).is_empty());
    }

    #[test]
    fn licensee_cache_tracks_incremental_inserts() {
        let mut db = db();
        assert_eq!(db.licensees(), vec!["Alpha", "Beta", "Delta", "Gamma"]);
        db.insert(lic(6, "Aardvark", RadioService::MG, 41.0, -88.0));
        db.insert(lic(7, "Alpha", RadioService::MG, 41.1, -88.1));
        db.insert(lic(8, "Zeta", RadioService::AF, 41.2, -88.2));
        assert_eq!(
            db.licensees(),
            vec!["Aardvark", "Alpha", "Beta", "Delta", "Gamma", "Zeta"]
        );
    }

    #[test]
    fn site_index_buckets_every_site() {
        let db = db();
        // 5 licenses × (tx + rx) sites.
        assert_eq!(db.site_index().site_count(), 10);
        assert!(db.site_index().cell_count() > 0);
    }

    #[test]
    fn extend_equals_per_insert() {
        let batch = vec![
            lic(1, "Alpha", RadioService::MG, 41.76, -88.17),
            lic(2, "Zeta", RadioService::CF, 41.70, -87.60),
            lic(3, "Alpha", RadioService::MG, 41.76, -88.18),
            lic(4, "Mid", RadioService::AF, 41.76, -88.17),
        ];
        let mut per_insert = UlsDatabase::new();
        for l in batch.clone() {
            per_insert.insert(l);
        }
        let mut bulk = UlsDatabase::new();
        bulk.extend(batch.clone());
        assert_eq!(per_insert, bulk);
        // Split across two batches: name merge must interleave correctly.
        let mut split = UlsDatabase::new();
        split.extend(batch[..2].to_vec());
        split.extend(batch[2..].to_vec());
        assert_eq!(per_insert, split);
        assert_eq!(split.licensees(), vec!["Alpha", "Mid", "Zeta"]);
    }

    #[test]
    fn replace_repairs_every_index() {
        let mut db = db();
        // Move license 3 (idx 2) from "Beta" to "Alpha", MG→CF, new call
        // sign, new location.
        let mut repl = lic(3, "Alpha", RadioService::CF, 35.0, -100.0);
        repl.call_sign = CallSign("WREPL".into());
        db.replace(2, repl.clone());
        // Equality vs a from-scratch build over the updated sequence is
        // the full-index check.
        let mut want = db.licenses().to_vec();
        want[2] = repl;
        assert_eq!(db, UlsDatabase::from_licenses(want));
        // "Beta" had only that filing: gone from the sorted name cache.
        assert_eq!(db.licensees(), vec!["Alpha", "Delta", "Gamma"]);
        assert!(db.licensee_search("Beta").is_empty());
        assert_eq!(db.licensee_search("Alpha").len(), 3);
        assert_eq!(db.find_call_sign("WREPL"), Some(2));
        assert_eq!(db.find_call_sign("WQ00003"), None);
        // Geographic search no longer sees the old site, sees the new one.
        let cme = LatLon::new(41.7625, -88.171233).unwrap();
        assert!(!db.geographic_search(&cme, 10.0).iter().any(|l| l.id.0 == 3));
        let tx = LatLon::new(35.0, -100.0).unwrap();
        assert!(db.geographic_search(&tx, 5.0).iter().any(|l| l.id.0 == 3));
    }

    #[test]
    #[should_panic(expected = "duplicate license id")]
    fn replace_rejects_id_collision() {
        let mut db = db();
        db.replace(2, lic(1, "Beta", RadioService::MG, 41.0, -88.0));
    }

    #[test]
    fn find_call_sign_latest_filing_wins() {
        let mut db = db();
        assert_eq!(db.find_call_sign("WQ00002"), Some(1));
        let dup = lic(9, "Echo", RadioService::MG, 41.5, -88.5);
        let mut dup = dup;
        dup.call_sign = CallSign("WQ00002".into());
        db.insert(dup);
        assert_eq!(db.find_call_sign("WQ00002"), Some(5));
        assert_eq!(db.find_call_sign("NOPE"), None);
    }

    #[test]
    fn set_cancellation_is_a_field_write() {
        let mut db = db();
        let d = Date::new(2018, 7, 1).unwrap();
        db.set_cancellation(0, Some(d));
        assert_eq!(db.licenses()[0].cancellation_date, Some(d));
        let mut want = db.licenses().to_vec();
        want[0].cancellation_date = Some(d);
        assert_eq!(db, UlsDatabase::from_licenses(want));
        db.set_cancellation(0, None);
        assert_eq!(db.licenses()[0].cancellation_date, None);
    }

    #[test]
    fn site_search_unknown_pair_is_empty() {
        let db = db();
        assert!(db
            .site_search(&RadioService::AF, &StationClass::MO)
            .is_empty());
        assert!(db
            .site_search(&RadioService::Other("ZZ".into()), &StationClass::FXO)
            .is_empty());
    }
}
