//! The simulated ULS portal: the four search interfaces of §2.1.

use crate::license::{License, LicenseId, RadioService, StationClass};
use crate::siteindex::SiteIndex;
use hft_geodesy::{LatLon, RadiusTest};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// The search interfaces the FCC Universal Licensing System exposes and
/// the paper's scraper drives (§2.1): geographic, site-based, by licensee
/// name, and by license id.
///
/// Implemented by [`UlsDatabase`]; defined as a trait to document the
/// substitution boundary — the paper's tool talks to these interfaces
/// over HTTP, ours talks to an in-memory corpus.
pub trait UlsPortal {
    /// Licenses with any site within `radius_km` of `center`
    /// (the "Geographic Search").
    fn geographic_search(&self, center: &LatLon, radius_km: f64) -> Vec<&License>;

    /// Licenses matching a radio service code and station class
    /// (the "Site License Search").
    fn site_search(&self, service: &RadioService, class: &StationClass) -> Vec<&License>;

    /// Licenses filed by `licensee` (exact name match, the "Basic Search").
    fn licensee_search(&self, licensee: &str) -> Vec<&License>;

    /// Full detail for one license (the "License Search" detail page).
    fn license_detail(&self, id: LicenseId) -> Option<&License>;
}

/// In-memory license corpus with the [`UlsPortal`] interfaces plus a few
/// bulk accessors used by reconstruction.
///
/// Searches are index-backed: geographic queries walk a [`SiteIndex`]
/// bucket grid instead of the whole corpus, site searches hit a
/// `(service, class)` index, and the sorted licensee-name list is
/// maintained incrementally on insert. The un-indexed scans survive as
/// [`UlsDatabase::geographic_search_linear`] and
/// [`UlsDatabase::site_search_linear`] — the reference implementations
/// the property tests and benches compare against.
#[derive(Debug, Clone, Default)]
pub struct UlsDatabase {
    licenses: Vec<License>,
    by_id: HashMap<LicenseId, usize>,
    by_licensee: HashMap<String, Vec<usize>>,
    /// Distinct licensee names, kept sorted on insert so
    /// [`UlsDatabase::licensees`] (called per evolution date) does not
    /// re-collect and re-sort the corpus every time.
    licensee_names: Vec<String>,
    /// `(service, class) → license indices` in insertion order.
    by_service_class: HashMap<(RadioService, StationClass), Vec<usize>>,
    /// Bucket grid over every tx/rx tower site.
    sites: SiteIndex,
}

impl UlsDatabase {
    /// An empty database.
    pub fn new() -> UlsDatabase {
        UlsDatabase::default()
    }

    /// Build from a license list.
    ///
    /// # Panics
    /// Panics on duplicate license ids — a corpus invariant violation.
    pub fn from_licenses(licenses: Vec<License>) -> UlsDatabase {
        let mut db = UlsDatabase::new();
        for lic in licenses {
            db.insert(lic);
        }
        db
    }

    /// Insert one license.
    ///
    /// # Panics
    /// Panics when the id is already present.
    pub fn insert(&mut self, license: License) {
        let idx = self.licenses.len();
        let prev = self.by_id.insert(license.id, idx);
        assert!(prev.is_none(), "duplicate license id {}", license.id);
        match self.by_licensee.entry(license.licensee.clone()) {
            Entry::Occupied(e) => e.into_mut().push(idx),
            Entry::Vacant(e) => {
                // First filing under this name: slot it into the sorted
                // name cache (names are distinct here by construction).
                let pos = self
                    .licensee_names
                    .binary_search(&license.licensee)
                    .unwrap_err();
                self.licensee_names.insert(pos, license.licensee.clone());
                e.insert(vec![idx]);
            }
        }
        self.by_service_class
            .entry((license.service.clone(), license.station_class.clone()))
            .or_default()
            .push(idx);
        for site in license.sites() {
            self.sites.insert(idx, &site.position);
        }
        self.licenses.push(license);
    }

    /// Number of licenses.
    pub fn len(&self) -> usize {
        self.licenses.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.licenses.is_empty()
    }

    /// All licenses in insertion order.
    pub fn licenses(&self) -> &[License] {
        &self.licenses
    }

    /// All distinct licensee names, sorted.
    ///
    /// Served from a cache maintained on insert; no per-call sort.
    pub fn licensees(&self) -> Vec<&str> {
        self.licensee_names.iter().map(String::as_str).collect()
    }

    /// The tower-site bucket grid backing [`UlsPortal::geographic_search`].
    pub fn site_index(&self) -> &SiteIndex {
        &self.sites
    }

    /// Reference implementation of [`UlsPortal::geographic_search`]:
    /// the original full linear scan with one exact geodesic solve per
    /// tower site. Kept for the property tests (indexed and linear
    /// results must agree exactly) and as the bench baseline.
    pub fn geographic_search_linear(&self, center: &LatLon, radius_km: f64) -> Vec<&License> {
        let radius_m = radius_km * 1000.0;
        self.licenses
            .iter()
            .filter(|l| {
                l.sites()
                    .any(|s| s.position.geodesic_distance_m(center) <= radius_m)
            })
            .collect()
    }

    /// Reference implementation of [`UlsPortal::site_search`]: the
    /// original full scan over the corpus. Kept for the property tests
    /// and as the bench baseline.
    pub fn site_search_linear(
        &self,
        service: &RadioService,
        class: &StationClass,
    ) -> Vec<&License> {
        self.licenses
            .iter()
            .filter(|l| &l.service == service && &l.station_class == class)
            .collect()
    }
}

impl UlsPortal for UlsDatabase {
    fn geographic_search(&self, center: &LatLon, radius_km: f64) -> Vec<&License> {
        let radius_m = radius_km * 1000.0;
        if !radius_m.is_finite() || radius_m < 0.0 {
            // Matches the scalar predicate, which no distance satisfies.
            return Vec::new();
        }
        let test = RadiusTest::new(center, radius_m);
        self.sites
            .matching_licenses(&test, self.licenses.len())
            .into_iter()
            .map(|i| &self.licenses[i])
            .collect()
    }

    fn site_search(&self, service: &RadioService, class: &StationClass) -> Vec<&License> {
        self.by_service_class
            .get(&(service.clone(), class.clone()))
            .map(|idxs| idxs.iter().map(|&i| &self.licenses[i]).collect())
            .unwrap_or_default()
    }

    fn licensee_search(&self, licensee: &str) -> Vec<&License> {
        self.by_licensee
            .get(licensee)
            .map(|idxs| idxs.iter().map(|&i| &self.licenses[i]).collect())
            .unwrap_or_default()
    }

    fn license_detail(&self, id: LicenseId) -> Option<&License> {
        self.by_id.get(&id).map(|&i| &self.licenses[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::license::{CallSign, FrequencyAssignment, MicrowavePath, TowerSite};
    use hft_time::Date;

    fn lic(id: u64, licensee: &str, service: RadioService, lat: f64, lon: f64) -> License {
        let tx = TowerSite::at(LatLon::new(lat, lon).unwrap());
        let rx = TowerSite::at(LatLon::new(lat + 0.2, lon + 0.5).unwrap());
        License {
            id: LicenseId(id),
            call_sign: CallSign(format!("WQ{id:05}")),
            licensee: licensee.into(),
            service,
            station_class: StationClass::FXO,
            grant_date: Date::new(2015, 1, 1).unwrap(),
            termination_date: None,
            cancellation_date: None,
            paths: vec![MicrowavePath {
                tx,
                rx,
                frequencies: vec![FrequencyAssignment { center_hz: 6.0e9 }],
            }],
        }
    }

    fn db() -> UlsDatabase {
        UlsDatabase::from_licenses(vec![
            lic(1, "Alpha", RadioService::MG, 41.76, -88.17),
            lic(2, "Alpha", RadioService::MG, 41.70, -87.60),
            lic(3, "Beta", RadioService::MG, 41.76, -88.18),
            lic(4, "Gamma", RadioService::CF, 41.76, -88.17),
            lic(5, "Delta", RadioService::MG, 35.00, -100.00),
        ])
    }

    #[test]
    fn geographic_search_radius() {
        let db = db();
        let cme = LatLon::new(41.7625, -88.171233).unwrap();
        let hits = db.geographic_search(&cme, 10.0);
        let ids: Vec<u64> = hits.iter().map(|l| l.id.0).collect();
        assert!(ids.contains(&1) && ids.contains(&3) && ids.contains(&4));
        assert!(!ids.contains(&5));
    }

    #[test]
    fn geographic_search_counts_rx_sites_too() {
        let db = db();
        // License 2's tx is ~50 km east of CME, but test around its rx site.
        let near_rx = LatLon::new(41.90, -87.10).unwrap();
        let hits = db.geographic_search(&near_rx, 15.0);
        assert!(hits.iter().any(|l| l.id.0 == 2));
    }

    #[test]
    fn site_search_filters_service() {
        let db = db();
        let hits = db.site_search(&RadioService::MG, &StationClass::FXO);
        assert_eq!(hits.len(), 4);
        assert!(hits.iter().all(|l| l.service == RadioService::MG));
    }

    #[test]
    fn licensee_search_exact() {
        let db = db();
        assert_eq!(db.licensee_search("Alpha").len(), 2);
        assert_eq!(db.licensee_search("Beta").len(), 1);
        assert!(
            db.licensee_search("alpha").is_empty(),
            "match is exact, like the ULS"
        );
        assert!(db.licensee_search("Nobody").is_empty());
    }

    #[test]
    fn license_detail_lookup() {
        let db = db();
        assert_eq!(db.license_detail(LicenseId(3)).unwrap().licensee, "Beta");
        assert!(db.license_detail(LicenseId(99)).is_none());
    }

    #[test]
    fn licensees_sorted_distinct() {
        let db = db();
        assert_eq!(db.licensees(), vec!["Alpha", "Beta", "Delta", "Gamma"]);
    }

    #[test]
    #[should_panic(expected = "duplicate license id")]
    fn duplicate_id_panics() {
        let mut db = db();
        db.insert(lic(1, "Dup", RadioService::MG, 41.0, -88.0));
    }

    #[test]
    fn empty_database() {
        let db = UlsDatabase::new();
        assert!(db.is_empty());
        assert_eq!(db.len(), 0);
        let cme = LatLon::new(41.76, -88.17).unwrap();
        assert!(db.geographic_search(&cme, 10.0).is_empty());
    }

    #[test]
    fn indexed_searches_match_linear_references() {
        let db = db();
        let cme = LatLon::new(41.7625, -88.171233).unwrap();
        for radius_km in [0.0, 1.0, 10.0, 60.0, 500.0, 25_000.0] {
            let indexed: Vec<u64> = db
                .geographic_search(&cme, radius_km)
                .iter()
                .map(|l| l.id.0)
                .collect();
            let linear: Vec<u64> = db
                .geographic_search_linear(&cme, radius_km)
                .iter()
                .map(|l| l.id.0)
                .collect();
            assert_eq!(indexed, linear, "radius {radius_km} km");
        }
        for service in [RadioService::MG, RadioService::CF, RadioService::AF] {
            let indexed: Vec<u64> = db
                .site_search(&service, &StationClass::FXO)
                .iter()
                .map(|l| l.id.0)
                .collect();
            let linear: Vec<u64> = db
                .site_search_linear(&service, &StationClass::FXO)
                .iter()
                .map(|l| l.id.0)
                .collect();
            assert_eq!(indexed, linear, "service {}", service.code());
        }
    }

    #[test]
    fn degenerate_radii_return_empty() {
        let db = db();
        let cme = LatLon::new(41.7625, -88.171233).unwrap();
        assert!(db.geographic_search(&cme, -1.0).is_empty());
        assert!(db.geographic_search(&cme, f64::NAN).is_empty());
        assert!(db.geographic_search_linear(&cme, -1.0).is_empty());
    }

    #[test]
    fn licensee_cache_tracks_incremental_inserts() {
        let mut db = db();
        assert_eq!(db.licensees(), vec!["Alpha", "Beta", "Delta", "Gamma"]);
        db.insert(lic(6, "Aardvark", RadioService::MG, 41.0, -88.0));
        db.insert(lic(7, "Alpha", RadioService::MG, 41.1, -88.1));
        db.insert(lic(8, "Zeta", RadioService::AF, 41.2, -88.2));
        assert_eq!(
            db.licensees(),
            vec!["Aardvark", "Alpha", "Beta", "Delta", "Gamma", "Zeta"]
        );
    }

    #[test]
    fn site_index_buckets_every_site() {
        let db = db();
        // 5 licenses × (tx + rx) sites.
        assert_eq!(db.site_index().site_count(), 10);
        assert!(db.site_index().cell_count() > 0);
    }

    #[test]
    fn site_search_unknown_pair_is_empty() {
        let db = db();
        assert!(db
            .site_search(&RadioService::AF, &StationClass::MO)
            .is_empty());
        assert!(db
            .site_search(&RadioService::Other("ZZ".into()), &StationClass::FXO)
            .is_empty());
    }
}
