//! Pipe-delimited flat-file codec for license datasets.
//!
//! Modeled on the record-per-line, pipe-delimited structure of the real
//! ULS daily dumps. Our dialect uses five record types:
//!
//! | Record | Fields |
//! |--------|--------|
//! | `HD`   | license id, call sign, service code, station class, grant, termination, cancellation |
//! | `EN`   | license id, licensee name |
//! | `LO`   | license id, location number, lat DMS, lon DMS, ground elevation m, structure height m |
//! | `PA`   | license id, path number, tx location number, rx location number |
//! | `FR`   | license id, path number, center frequency MHz |
//!
//! Dates are `MM/DD/YYYY`; an empty date field means "no such event".
//! Records for one license are contiguous and `HD` comes first; the
//! decoder enforces this. Blank lines and `#` comments are ignored.

use crate::license::{
    CallSign, FrequencyAssignment, License, LicenseId, MicrowavePath, RadioService, StationClass,
    TowerSite,
};
use core::fmt;
use hft_geodesy::{Dms, LatLon};
use hft_time::Date;
use std::collections::HashMap;

/// Error decoding a flat file.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeError {
    /// 1-based line number the error was detected at.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flat file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DecodeError {}

fn fmt_date(d: Option<Date>) -> String {
    d.map(|d| d.to_fcc()).unwrap_or_default()
}

/// Pipes cannot appear inside fields in this dialect; replaced with `/`
/// on write (licensee names never legitimately contain pipes).
fn escape(field: &str) -> String {
    field.replace('|', "/")
}

/// Serialize licenses to the flat-file text format.
pub fn encode(licenses: &[License]) -> String {
    let mut out = String::new();
    for lic in licenses {
        out.push_str(&format!(
            "HD|{}|{}|{}|{}|{}|{}|{}\n",
            lic.id.0,
            escape(&lic.call_sign.0),
            lic.service.code(),
            lic.station_class.code(),
            lic.grant_date.to_fcc(),
            fmt_date(lic.termination_date),
            fmt_date(lic.cancellation_date),
        ));
        out.push_str(&format!("EN|{}|{}\n", lic.id.0, escape(&lic.licensee)));

        // LO records: dedupe identical sites, numbering from 1.
        let mut sites: Vec<TowerSite> = Vec::new();
        let mut lo_records = String::new();
        let mut pa_fr = String::new();
        {
            let mut site_no = |site: &TowerSite| -> usize {
                if let Some(i) = sites.iter().position(|s| s == site) {
                    return i + 1;
                }
                sites.push(*site);
                let n = sites.len();
                lo_records.push_str(&format!(
                    "LO|{}|{}|{}|{}|{:.1}|{:.1}\n",
                    lic.id.0,
                    n,
                    Dms::from_decimal_latitude(site.position.lat_deg()).to_uls(),
                    Dms::from_decimal_longitude(site.position.lon_deg()).to_uls(),
                    site.ground_elevation_m,
                    site.structure_height_m,
                ));
                n
            };
            for (i, path) in lic.paths.iter().enumerate() {
                let tx_no = site_no(&path.tx);
                let rx_no = site_no(&path.rx);
                pa_fr.push_str(&format!("PA|{}|{}|{}|{}\n", lic.id.0, i + 1, tx_no, rx_no));
                for f in &path.frequencies {
                    pa_fr.push_str(&format!(
                        "FR|{}|{}|{:.5}\n",
                        lic.id.0,
                        i + 1,
                        f.center_hz / 1.0e6
                    ));
                }
            }
        }
        out.push_str(&lo_records);
        out.push_str(&pa_fr);
    }
    out
}

/// `(tx location no, rx location no, frequencies MHz)` while assembling.
type PendingPath = (usize, usize, Vec<f64>);

/// A license being assembled from its records.
struct Pending {
    license: License,
    locations: HashMap<usize, TowerSite>,
    /// path number → endpoints and frequencies
    paths: HashMap<usize, PendingPath>,
}

impl Pending {
    fn finish(self, line: usize) -> Result<License, DecodeError> {
        let mut lic = self.license;
        let mut numbered: Vec<(usize, PendingPath)> = self.paths.into_iter().collect();
        numbered.sort_by_key(|(n, _)| *n);
        for (pn, (tx_no, rx_no, freqs)) in numbered {
            let missing = |what: &str, no: usize| DecodeError {
                line,
                message: format!("license {} path {pn}: unknown {what} location {no}", lic.id),
            };
            let tx = *self
                .locations
                .get(&tx_no)
                .ok_or_else(|| missing("tx", tx_no))?;
            let rx = *self
                .locations
                .get(&rx_no)
                .ok_or_else(|| missing("rx", rx_no))?;
            if freqs.is_empty() {
                return Err(DecodeError {
                    line,
                    message: format!("license {} path {pn}: no FR records", lic.id),
                });
            }
            lic.paths.push(MicrowavePath {
                tx,
                rx,
                frequencies: freqs
                    .into_iter()
                    .map(|mhz| FrequencyAssignment {
                        center_hz: mhz * 1.0e6,
                    })
                    .collect(),
            });
        }
        Ok(lic)
    }
}

fn parse_date_opt(s: &str, line: usize) -> Result<Option<Date>, DecodeError> {
    if s.is_empty() {
        return Ok(None);
    }
    Date::parse_fcc(s).map(Some).map_err(|e| DecodeError {
        line,
        message: e.to_string(),
    })
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str, line: usize) -> Result<T, DecodeError> {
    s.parse().map_err(|_| DecodeError {
        line,
        message: format!("bad {what}: {s:?}"),
    })
}

fn parse_dms(s: &str, line: usize) -> Result<f64, DecodeError> {
    Dms::parse_uls(s)
        .map(|d| d.to_decimal_degrees())
        .map_err(|e| DecodeError {
            line,
            message: e.to_string(),
        })
}

fn expect_fields(fields: &[&str], n: usize, line: usize) -> Result<(), DecodeError> {
    if fields.len() != n {
        return Err(DecodeError {
            line,
            message: format!("{} expects {n} fields, got {}", fields[0], fields.len()),
        });
    }
    Ok(())
}

/// Parse the flat-file text format back into licenses, in file order.
pub fn decode(text: &str) -> Result<Vec<License>, DecodeError> {
    let mut out: Vec<License> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut last_line = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        last_line = line;
        // Strip only a CR from CRLF files; trailing spaces are significant
        // (they can be part of a licensee-name field).
        let raw = raw.strip_suffix('\r').unwrap_or(raw);
        if raw.is_empty() || raw.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = raw.split('|').collect();
        match fields[0] {
            "HD" => {
                expect_fields(&fields, 8, line)?;
                if let Some(p) = pending.take() {
                    out.push(p.finish(line)?);
                }
                pending = Some(Pending {
                    license: License {
                        id: LicenseId(parse_num(fields[1], "license id", line)?),
                        call_sign: CallSign(fields[2].to_string()),
                        licensee: String::new(),
                        service: RadioService::from_code(fields[3]),
                        station_class: StationClass::from_code(fields[4]),
                        grant_date: Date::parse_fcc(fields[5]).map_err(|e| DecodeError {
                            line,
                            message: format!("grant date: {e}"),
                        })?,
                        termination_date: parse_date_opt(fields[6], line)?,
                        cancellation_date: parse_date_opt(fields[7], line)?,
                        paths: Vec::new(),
                    },
                    locations: HashMap::new(),
                    paths: HashMap::new(),
                });
            }
            "EN" => {
                expect_fields(&fields, 3, line)?;
                let p = pending.as_mut().ok_or_else(|| DecodeError {
                    line,
                    message: "EN record before any HD".into(),
                })?;
                p.license.licensee = fields[2].to_string();
            }
            "LO" => {
                expect_fields(&fields, 7, line)?;
                let p = pending.as_mut().ok_or_else(|| DecodeError {
                    line,
                    message: "LO record before any HD".into(),
                })?;
                let no: usize = parse_num(fields[2], "location number", line)?;
                let lat = parse_dms(fields[3], line)?;
                let lon = parse_dms(fields[4], line)?;
                let position = LatLon::new(lat, lon).map_err(|e| DecodeError {
                    line,
                    message: e.to_string(),
                })?;
                p.locations.insert(
                    no,
                    TowerSite {
                        position,
                        ground_elevation_m: parse_num(fields[5], "ground elevation", line)?,
                        structure_height_m: parse_num(fields[6], "structure height", line)?,
                    },
                );
            }
            "PA" => {
                expect_fields(&fields, 5, line)?;
                let p = pending.as_mut().ok_or_else(|| DecodeError {
                    line,
                    message: "PA record before any HD".into(),
                })?;
                let pn: usize = parse_num(fields[2], "path number", line)?;
                let tx: usize = parse_num(fields[3], "tx location", line)?;
                let rx: usize = parse_num(fields[4], "rx location", line)?;
                if p.paths.insert(pn, (tx, rx, Vec::new())).is_some() {
                    return Err(DecodeError {
                        line,
                        message: format!("duplicate PA record for path {pn}"),
                    });
                }
            }
            "FR" => {
                expect_fields(&fields, 4, line)?;
                let p = pending.as_mut().ok_or_else(|| DecodeError {
                    line,
                    message: "FR record before any HD".into(),
                })?;
                let pn: usize = parse_num(fields[2], "path number", line)?;
                let mhz: f64 = parse_num(fields[3], "frequency", line)?;
                if !(1000.0..=100_000.0).contains(&mhz) {
                    return Err(DecodeError {
                        line,
                        message: format!("frequency {mhz} MHz outside plausible microwave range"),
                    });
                }
                let entry = p.paths.get_mut(&pn).ok_or_else(|| DecodeError {
                    line,
                    message: format!("FR record for unknown path {pn}"),
                })?;
                entry.2.push(mhz);
            }
            other => {
                return Err(DecodeError {
                    line,
                    message: format!("unknown record type {other:?}"),
                });
            }
        }
    }
    if let Some(p) = pending.take() {
        out.push(p.finish(last_line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::new(y, m, day).unwrap()
    }

    fn site(lat: f64, lon: f64) -> TowerSite {
        TowerSite {
            position: LatLon::new(lat, lon).unwrap(),
            ground_elevation_m: 230.0,
            structure_height_m: 110.0,
        }
    }

    fn sample() -> License {
        License {
            id: LicenseId(7),
            call_sign: CallSign("WQAB007".into()),
            licensee: "Webline Holdings".into(),
            service: RadioService::MG,
            station_class: StationClass::FXO,
            grant_date: d(2013, 2, 14),
            termination_date: Some(d(2023, 2, 14)),
            cancellation_date: None,
            paths: vec![
                MicrowavePath {
                    tx: site(41.76, -88.17),
                    rx: site(41.72, -87.69),
                    frequencies: vec![
                        FrequencyAssignment { center_hz: 6.19e9 },
                        FrequencyAssignment { center_hz: 6.37e9 },
                    ],
                },
                MicrowavePath {
                    tx: site(41.72, -87.69),
                    rx: site(41.60, -87.20),
                    frequencies: vec![FrequencyAssignment { center_hz: 6.25e9 }],
                },
            ],
        }
    }

    #[test]
    fn encode_structure() {
        let text = encode(&[sample()]);
        let kinds: Vec<&str> = text.lines().map(|l| &l[..2]).collect();
        // Shared middle tower is deduped: 3 LO records, not 4.
        assert_eq!(
            kinds,
            vec!["HD", "EN", "LO", "LO", "LO", "PA", "FR", "FR", "PA", "FR"]
        );
    }

    #[test]
    fn round_trip_single() {
        let orig = sample();
        let text = encode(std::slice::from_ref(&orig));
        let back = decode(&text).unwrap();
        assert_eq!(back.len(), 1);
        let b = &back[0];
        assert_eq!(b.id, orig.id);
        assert_eq!(b.call_sign, orig.call_sign);
        assert_eq!(b.licensee, orig.licensee);
        assert_eq!(b.service, orig.service);
        assert_eq!(b.station_class, orig.station_class);
        assert_eq!(b.grant_date, orig.grant_date);
        assert_eq!(b.termination_date, orig.termination_date);
        assert_eq!(b.cancellation_date, orig.cancellation_date);
        assert_eq!(b.paths.len(), 2);
        // Coordinates survive within DMS text resolution (~0.1 arcsec ≈ 3 m).
        for (bp, op) in b.paths.iter().zip(&orig.paths) {
            assert!((bp.tx.position.lat_deg() - op.tx.position.lat_deg()).abs() < 1e-4);
            assert!((bp.rx.position.lon_deg() - op.rx.position.lon_deg()).abs() < 1e-4);
            assert_eq!(bp.frequencies.len(), op.frequencies.len());
            for (bf, of) in bp.frequencies.iter().zip(&op.frequencies) {
                assert!((bf.center_hz - of.center_hz).abs() < 1.0);
            }
        }
    }

    #[test]
    fn round_trip_multiple_licenses() {
        let mut second = sample();
        second.id = LicenseId(8);
        second.licensee = "New Line Networks".into();
        second.cancellation_date = Some(d(2018, 1, 1));
        let text = encode(&[sample(), second.clone()]);
        let back = decode(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].licensee, "New Line Networks");
        assert_eq!(back[1].cancellation_date, Some(d(2018, 1, 1)));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = format!("# dataset header\n\n{}", encode(&[sample()]));
        assert_eq!(decode(&text).unwrap().len(), 1);
    }

    #[test]
    fn pipe_in_name_escaped() {
        let mut lic = sample();
        lic.licensee = "Evil|Name LLC".into();
        let text = encode(&[lic]);
        let back = decode(&text).unwrap();
        assert_eq!(back[0].licensee, "Evil/Name LLC");
    }

    #[test]
    fn decode_rejects_orphan_records() {
        assert!(decode("EN|1|Nobody\n").is_err());
        assert!(decode("LO|1|1|41-0-0.0 N|88-0-0.0 W|230.0|110.0\n").is_err());
        assert!(decode("PA|1|1|1|2\n").is_err());
        assert!(decode("FR|1|1|6000.0\n").is_err());
    }

    #[test]
    fn decode_rejects_unknown_record() {
        let text = format!("{}XX|1|foo\n", encode(&[sample()]));
        let err = decode(&text).unwrap_err();
        assert!(err.message.contains("unknown record type"));
    }

    #[test]
    fn decode_rejects_bad_field_counts() {
        assert!(decode("HD|1|W|MG|FXO|01/01/2015|\n").is_err());
    }

    #[test]
    fn decode_rejects_path_with_unknown_location() {
        let text = "\
HD|1|W|MG|FXO|01/01/2015||
EN|1|Test
LO|1|1|41-00-00.0 N|88-00-00.0 W|230.0|110.0
PA|1|1|1|9
FR|1|1|6000.0
";
        let err = decode(text).unwrap_err();
        assert!(
            err.message.contains("unknown rx location"),
            "{}",
            err.message
        );
    }

    #[test]
    fn decode_rejects_path_without_frequencies() {
        let text = "\
HD|1|W|MG|FXO|01/01/2015||
EN|1|Test
LO|1|1|41-00-00.0 N|88-00-00.0 W|230.0|110.0
LO|1|2|41-10-00.0 N|87-30-00.0 W|230.0|110.0
PA|1|1|1|2
";
        let err = decode(text).unwrap_err();
        assert!(err.message.contains("no FR records"));
    }

    #[test]
    fn decode_rejects_implausible_frequency() {
        let text = "\
HD|1|W|MG|FXO|01/01/2015||
EN|1|Test
LO|1|1|41-00-00.0 N|88-00-00.0 W|230.0|110.0
LO|1|2|41-10-00.0 N|87-30-00.0 W|230.0|110.0
PA|1|1|1|2
FR|1|1|42.0
";
        let err = decode(text).unwrap_err();
        assert!(err.message.contains("outside plausible"));
    }

    #[test]
    fn decode_rejects_duplicate_path_number() {
        let text = "\
HD|1|W|MG|FXO|01/01/2015||
EN|1|Test
LO|1|1|41-00-00.0 N|88-00-00.0 W|230.0|110.0
LO|1|2|41-10-00.0 N|87-30-00.0 W|230.0|110.0
PA|1|1|1|2
PA|1|1|2|1
FR|1|1|6000.0
";
        assert!(decode(text).unwrap_err().message.contains("duplicate PA"));
    }

    #[test]
    fn round_trip_full_lifecycle_dates() {
        // Regression for the delta codec: a license carrying *both* a
        // termination and a cancellation date must survive encode/decode
        // exactly — cancel transactions are rendered through this codec.
        let mut lic = sample();
        lic.termination_date = Some(d(2023, 2, 14));
        lic.cancellation_date = Some(d(2016, 9, 30));
        let back = decode(&encode(std::slice::from_ref(&lic))).unwrap();
        assert_eq!(back[0].termination_date, Some(d(2023, 2, 14)));
        assert_eq!(back[0].cancellation_date, Some(d(2016, 9, 30)));
        // The decoded license reproduces the half-open lifecycle edges.
        assert!(back[0].active_on(d(2016, 9, 29)));
        assert!(!back[0].active_on(d(2016, 9, 30)));
    }

    #[test]
    fn decode_accepts_out_of_order_lo_and_pa_numbering() {
        // LO records arrive 2-before-1 with a gap (no location 3), and the
        // PA records arrive 9-before-4. Real ULS dumps are not ordered;
        // the decoder must key strictly by number, and paths must come
        // back sorted by path number regardless of file order.
        let text = "\
HD|1|W|MG|FXO|01/01/2015||
EN|1|Test
LO|1|2|41-10-00.0 N|87-30-00.0 W|230.0|110.0
LO|1|1|41-00-00.0 N|88-00-00.0 W|230.0|110.0
LO|1|4|41-20-00.0 N|87-00-00.0 W|230.0|110.0
PA|1|9|4|1
FR|1|9|6100.0
PA|1|4|1|2
FR|1|4|6000.0
";
        let back = decode(text).unwrap();
        assert_eq!(back.len(), 1);
        let paths = &back[0].paths;
        assert_eq!(paths.len(), 2);
        // Path 4 (tx location 1) sorts before path 9 (tx location 4).
        assert!((paths[0].tx.position.lat_deg() - 41.0).abs() < 1e-6);
        assert!((paths[0].frequencies[0].center_hz - 6.0e9).abs() < 1.0);
        assert!((paths[1].tx.position.lat_deg() - (41.0 + 20.0 / 60.0)).abs() < 1e-6);
        assert!((paths[1].frequencies[0].center_hz - 6.1e9).abs() < 1.0);
    }

    #[test]
    fn out_of_order_encode_round_trip_is_stable() {
        // Once decoded, re-encoding produces the canonical ordering and a
        // second decode is a fixed point.
        let text = "\
HD|1|W|MG|FXO|01/01/2015|12/31/2030|06/01/2017
EN|1|Test
LO|1|2|41-10-00.0 N|87-30-00.0 W|230.0|110.0
LO|1|1|41-00-00.0 N|88-00-00.0 W|230.0|110.0
PA|1|2|2|1
FR|1|2|6000.0
";
        let once = decode(text).unwrap();
        let canonical = encode(&once);
        let twice = decode(&canonical).unwrap();
        assert_eq!(once, twice);
        assert_eq!(canonical, encode(&twice));
        assert_eq!(twice[0].cancellation_date, Some(d(2017, 6, 1)));
    }

    #[test]
    fn error_carries_line_number() {
        let text = "\
HD|1|W|MG|FXO|01/01/2015||
EN|1|Test
LO|1|1|garbage|88-00-00.0 W|230.0|110.0
";
        let err = decode(text).unwrap_err();
        assert_eq!(err.line, 3);
    }
}
