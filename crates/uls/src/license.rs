//! The ULS license record schema used by network reconstruction.

use core::fmt;
use hft_geodesy::{LatLon, RadiusTest};
use hft_time::Date;

/// ULS unique license system identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LicenseId(pub u64);

impl fmt::Display for LicenseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:08}", self.0)
    }
}

/// An FCC call sign, e.g. `WQXX123`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallSign(pub String);

impl fmt::Display for CallSign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Radio service code of the license.
///
/// `MG` (Microwave Industrial/Business Pool) is the service under which
/// the corridor's HFT links are licensed; the variants below are the ones
/// that appear near the corridor and act as filter noise in the pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RadioService {
    /// Microwave Industrial/Business Pool (the HFT service).
    MG,
    /// Common-carrier fixed point-to-point microwave.
    CF,
    /// Broadcast auxiliary microwave.
    AF,
    /// Any other service code, preserved verbatim.
    Other(String),
}

impl RadioService {
    /// Two-letter code as it appears in ULS exports.
    pub fn code(&self) -> &str {
        match self {
            RadioService::MG => "MG",
            RadioService::CF => "CF",
            RadioService::AF => "AF",
            RadioService::Other(s) => s,
        }
    }

    /// Parse a service code.
    pub fn from_code(code: &str) -> RadioService {
        match code {
            "MG" => RadioService::MG,
            "CF" => RadioService::CF,
            "AF" => RadioService::AF,
            other => RadioService::Other(other.to_string()),
        }
    }
}

/// Station class assigned to the license's stations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StationClass {
    /// Operational fixed (the HFT towers).
    FXO,
    /// Fixed base.
    FB,
    /// Mobile.
    MO,
    /// Any other class, preserved verbatim.
    Other(String),
}

impl StationClass {
    /// Class code as it appears in ULS exports.
    pub fn code(&self) -> &str {
        match self {
            StationClass::FXO => "FXO",
            StationClass::FB => "FB",
            StationClass::MO => "MO",
            StationClass::Other(s) => s,
        }
    }

    /// Parse a class code.
    pub fn from_code(code: &str) -> StationClass {
        match code {
            "FXO" => StationClass::FXO,
            "FB" => StationClass::FB,
            "MO" => StationClass::MO,
            other => StationClass::Other(other.to_string()),
        }
    }
}

/// Lifecycle status of a license at some reference date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LicenseStatus {
    /// Granted and neither cancelled nor terminated.
    Active,
    /// Cancelled by licensor or licensee.
    Cancelled,
    /// Reached its termination date without renewal.
    Terminated,
    /// Grant date in the future of the reference date.
    NotYetGranted,
}

/// A tower site referenced by a license.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TowerSite {
    /// WGS-84 position.
    pub position: LatLon,
    /// Ground elevation above mean sea level, meters.
    pub ground_elevation_m: f64,
    /// Height of the supporting structure above ground, meters.
    pub structure_height_m: f64,
}

impl TowerSite {
    /// A site at `position` with typical midwest tower dimensions.
    pub fn at(position: LatLon) -> TowerSite {
        TowerSite {
            position,
            ground_elevation_m: 230.0,
            structure_height_m: 110.0,
        }
    }

    /// Height of the radio above mean sea level, meters.
    pub fn radio_centerline_m(&self) -> f64 {
        self.ground_elevation_m + self.structure_height_m
    }
}

/// One frequency authorized on a path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyAssignment {
    /// Center frequency, Hz.
    pub center_hz: f64,
}

impl FrequencyAssignment {
    /// The frequency in GHz (the unit of the paper's Fig. 4b).
    pub fn ghz(&self) -> f64 {
        self.center_hz / 1.0e9
    }
}

/// A licensed transmitter→receiver microwave path.
///
/// ULS licenses have one central transmit location and one or more
/// receive locations; each `MicrowavePath` is one such pairing with its
/// authorized frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct MicrowavePath {
    /// Transmit site.
    pub tx: TowerSite,
    /// Receive site.
    pub rx: TowerSite,
    /// Authorized frequencies on this path (at least one).
    pub frequencies: Vec<FrequencyAssignment>,
}

impl MicrowavePath {
    /// Geodesic path length in meters.
    pub fn length_m(&self) -> f64 {
        self.tx.position.geodesic_distance_m(&self.rx.position)
    }

    /// Geodesic path length in kilometers.
    pub fn length_km(&self) -> f64 {
        self.length_m() / 1000.0
    }
}

/// A ULS license record.
#[derive(Debug, Clone, PartialEq)]
pub struct License {
    /// Unique system identifier.
    pub id: LicenseId,
    /// Call sign.
    pub call_sign: CallSign,
    /// Licensee name exactly as filed (entities often file under shells;
    /// see §2.2 "Uncovering real names" — we deliberately keep the filed
    /// name, as the paper does).
    pub licensee: String,
    /// Radio service code.
    pub service: RadioService,
    /// Station class.
    pub station_class: StationClass,
    /// Grant date.
    pub grant_date: Date,
    /// Scheduled termination (expiration) date, if any.
    pub termination_date: Option<Date>,
    /// Cancellation date, if cancelled.
    pub cancellation_date: Option<Date>,
    /// The licensed microwave paths.
    pub paths: Vec<MicrowavePath>,
}

impl License {
    /// Lifecycle status of this license as of `date`.
    pub fn status_on(&self, date: Date) -> LicenseStatus {
        if date < self.grant_date {
            return LicenseStatus::NotYetGranted;
        }
        if let Some(c) = self.cancellation_date {
            if date >= c {
                return LicenseStatus::Cancelled;
            }
        }
        if let Some(t) = self.termination_date {
            if date >= t {
                return LicenseStatus::Terminated;
            }
        }
        LicenseStatus::Active
    }

    /// Whether the license is active (granted, not cancelled/terminated)
    /// as of `date` — the activity criterion of §2.3.
    pub fn active_on(&self, date: Date) -> bool {
        self.status_on(date) == LicenseStatus::Active
    }

    /// Every tower site the license references (tx and rx of every path).
    pub fn sites(&self) -> impl Iterator<Item = &TowerSite> {
        self.paths.iter().flat_map(|p| [&p.tx, &p.rx])
    }

    /// Whether any referenced site lies within `radius_km` of `center`.
    ///
    /// The unit conversion and the center's thresholds/unit vector are
    /// computed once per call ([`RadiusTest`]), not once per site; each
    /// site then costs a dot product, with an exact geodesic solve only
    /// in the kernel's sphere-vs-ellipsoid guard band. Answers are
    /// identical to comparing `geodesic_distance_m` per site.
    pub fn within_radius(&self, center: &LatLon, radius_km: f64) -> bool {
        let radius_m = radius_km * 1000.0;
        if !radius_m.is_finite() || radius_m < 0.0 {
            // No distance satisfies the scalar predicate either.
            return false;
        }
        let test = RadiusTest::new(center, radius_m);
        self.sites().any(|s| test.contains(&s.position))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::new(y, m, day).unwrap()
    }

    fn sample_license() -> License {
        let tx = TowerSite::at(LatLon::new(41.76, -88.17).unwrap());
        let rx = TowerSite::at(LatLon::new(41.70, -87.60).unwrap());
        License {
            id: LicenseId(42),
            call_sign: CallSign("WQXX042".into()),
            licensee: "New Line Networks".into(),
            service: RadioService::MG,
            station_class: StationClass::FXO,
            grant_date: d(2015, 6, 17),
            termination_date: Some(d(2025, 6, 17)),
            cancellation_date: None,
            paths: vec![MicrowavePath {
                tx,
                rx,
                frequencies: vec![FrequencyAssignment { center_hz: 11.2e9 }],
            }],
        }
    }

    #[test]
    fn status_lifecycle() {
        let mut lic = sample_license();
        assert_eq!(lic.status_on(d(2015, 6, 16)), LicenseStatus::NotYetGranted);
        assert_eq!(lic.status_on(d(2015, 6, 17)), LicenseStatus::Active);
        assert_eq!(lic.status_on(d(2020, 4, 1)), LicenseStatus::Active);
        assert_eq!(lic.status_on(d(2025, 6, 17)), LicenseStatus::Terminated);
        lic.cancellation_date = Some(d(2018, 3, 1));
        assert_eq!(lic.status_on(d(2018, 3, 1)), LicenseStatus::Cancelled);
        assert_eq!(lic.status_on(d(2018, 2, 28)), LicenseStatus::Active);
    }

    #[test]
    fn cancellation_beats_termination() {
        let mut lic = sample_license();
        lic.cancellation_date = Some(d(2026, 1, 1));
        // After both dates, the cancellation is reported (it's checked first
        // and reflects an affirmative action on the license).
        assert_eq!(lic.status_on(d(2027, 1, 1)), LicenseStatus::Cancelled);
    }

    #[test]
    fn active_on_is_half_open() {
        let mut lic = sample_license();
        lic.cancellation_date = Some(d(2018, 3, 1));
        assert!(lic.active_on(d(2018, 2, 28)));
        assert!(!lic.active_on(d(2018, 3, 1)));
    }

    #[test]
    fn sites_enumerates_both_endpoints() {
        let lic = sample_license();
        assert_eq!(lic.sites().count(), 2);
    }

    #[test]
    fn radius_check() {
        let lic = sample_license();
        let cme = LatLon::new(41.7625, -88.171233).unwrap();
        assert!(lic.within_radius(&cme, 10.0));
        let faraway = LatLon::new(35.0, -100.0).unwrap();
        assert!(!lic.within_radius(&faraway, 10.0));
    }

    #[test]
    fn path_length() {
        let lic = sample_license();
        let km = lic.paths[0].length_km();
        assert!((40.0..55.0).contains(&km), "got {km}");
    }

    #[test]
    fn frequency_units() {
        let f = FrequencyAssignment { center_hz: 6.175e9 };
        assert!((f.ghz() - 6.175).abs() < 1e-12);
    }

    #[test]
    fn service_and_class_codes_round_trip() {
        for code in ["MG", "CF", "AF", "ZZ"] {
            assert_eq!(RadioService::from_code(code).code(), code);
        }
        for code in ["FXO", "FB", "MO", "XX"] {
            assert_eq!(StationClass::from_code(code).code(), code);
        }
    }

    #[test]
    fn radio_centerline() {
        let s = TowerSite {
            position: LatLon::new(41.0, -88.0).unwrap(),
            ground_elevation_m: 200.0,
            structure_height_m: 150.0,
        };
        assert_eq!(s.radio_centerline_m(), 350.0);
    }
}
