//! Property-based tests for the indexed portal: for arbitrary corpora
//! and query points, the grid-indexed `geographic_search` and the
//! `(service, class)`-indexed `site_search` must return exactly the same
//! license sets — in the same order — as the retained linear-scan
//! reference implementations, including at radius-boundary points.

use hft_geodesy::LatLon;
use hft_time::Date;
use hft_uls::{
    CallSign, FrequencyAssignment, License, LicenseId, MicrowavePath, RadioService, StationClass,
    TowerSite, UlsDatabase, UlsPortal,
};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = LatLon> {
    (30.0f64..50.0, -100.0f64..-70.0).prop_map(|(lat, lon)| LatLon::new(lat, lon).unwrap())
}

fn arb_service() -> impl Strategy<Value = RadioService> {
    prop_oneof![
        Just(RadioService::MG),
        Just(RadioService::CF),
        Just(RadioService::AF),
        Just(RadioService::Other("ZZ".into())),
    ]
}

fn arb_class() -> impl Strategy<Value = StationClass> {
    prop_oneof![
        Just(StationClass::FXO),
        Just(StationClass::FB),
        Just(StationClass::MO),
    ]
}

/// A corpus of up to 60 single-path licenses spread over the central/
/// eastern US, filed under a handful of recurring licensee names.
fn arb_corpus() -> impl Strategy<Value = Vec<License>> {
    proptest::collection::vec(
        (arb_point(), arb_point(), arb_service(), arb_class()),
        0..60,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (tx, rx, service, station_class))| License {
                id: LicenseId(i as u64 + 1),
                call_sign: CallSign(format!("WQ{i:05}")),
                licensee: format!("Licensee {:02}", i % 7),
                service,
                station_class,
                grant_date: Date::new(2015, 1, 1).unwrap(),
                termination_date: None,
                cancellation_date: None,
                paths: vec![MicrowavePath {
                    tx: TowerSite::at(tx),
                    rx: TowerSite::at(rx),
                    frequencies: vec![FrequencyAssignment { center_hz: 6.0e9 }],
                }],
            })
            .collect()
    })
}

fn ids(licenses: &[&License]) -> Vec<u64> {
    licenses.iter().map(|l| l.id.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_geographic_search_matches_linear(
        corpus in arb_corpus(),
        center in arb_point(),
        r_km in 0.0f64..3_000.0,
    ) {
        let db = UlsDatabase::from_licenses(corpus);
        prop_assert_eq!(
            ids(&db.geographic_search(&center, r_km)),
            ids(&db.geographic_search_linear(&center, r_km)),
        );
    }

    #[test]
    fn geographic_search_exact_at_boundary_radii(
        corpus in arb_corpus(),
        center in arb_point(),
        pick in 0usize..10_000,
        eps_m in -2.0f64..2.0,
    ) {
        // Aim the radius to land within ±2 m of an actual tower site, so
        // the query circle's edge cuts straight through corpus points —
        // the regime where an approximate kernel would gain or lose a
        // license. Indexed and linear must still agree exactly.
        let db = UlsDatabase::from_licenses(corpus);
        prop_assume!(!db.is_empty());
        let sites: Vec<LatLon> = db
            .licenses()
            .iter()
            .flat_map(|l| l.sites().map(|s| s.position))
            .collect();
        let target = sites[pick % sites.len()];
        let r_km = (center.geodesic_distance_m(&target) + eps_m).max(0.0) / 1000.0;
        prop_assert_eq!(
            ids(&db.geographic_search(&center, r_km)),
            ids(&db.geographic_search_linear(&center, r_km)),
        );
    }

    #[test]
    fn indexed_site_search_matches_linear(
        corpus in arb_corpus(),
        service in arb_service(),
        class in arb_class(),
    ) {
        let db = UlsDatabase::from_licenses(corpus);
        prop_assert_eq!(
            ids(&db.site_search(&service, &class)),
            ids(&db.site_search_linear(&service, &class)),
        );
    }

    #[test]
    fn licensee_cache_matches_recomputation(corpus in arb_corpus()) {
        let db = UlsDatabase::from_licenses(corpus);
        let mut expect: Vec<&str> = db
            .licenses()
            .iter()
            .map(|l| l.licensee.as_str())
            .collect();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(db.licensees(), expect);
    }

    #[test]
    fn incremental_insert_equals_bulk_build(corpus in arb_corpus(), center in arb_point()) {
        // `from_licenses` is insert-by-insert; an incrementally grown
        // database must index identically to a bulk-built one.
        let bulk = UlsDatabase::from_licenses(corpus.clone());
        let mut grown = UlsDatabase::new();
        for lic in corpus {
            grown.insert(lic);
        }
        prop_assert_eq!(grown.licensees(), bulk.licensees());
        prop_assert_eq!(
            ids(&grown.geographic_search(&center, 250.0)),
            ids(&bulk.geographic_search(&center, 250.0)),
        );
    }
}
