//! Property test: arbitrary license corpora survive a flat-file round trip.

use hft_geodesy::LatLon;
use hft_time::Date;
use hft_uls::flatfile::{decode, encode};
use hft_uls::{
    CallSign, FrequencyAssignment, License, LicenseId, MicrowavePath, RadioService, StationClass,
    TowerSite,
};
use proptest::prelude::*;

fn arb_date() -> impl Strategy<Value = Date> {
    (2010i32..=2022, 1u32..=12, 1u32..=28).prop_map(|(y, m, d)| Date::new(y, m, d).unwrap())
}

fn arb_site() -> impl Strategy<Value = TowerSite> {
    (
        38.0f64..44.0,
        -90.0f64..-72.0,
        100.0f64..400.0,
        20.0f64..200.0,
    )
        .prop_map(|(lat, lon, elev, height)| TowerSite {
            position: LatLon::new(lat, lon).unwrap(),
            ground_elevation_m: (elev * 10.0).round() / 10.0,
            structure_height_m: (height * 10.0).round() / 10.0,
        })
}

fn arb_path() -> impl Strategy<Value = MicrowavePath> {
    (
        arb_site(),
        arb_site(),
        proptest::collection::vec(5925.0f64..23_600.0, 1..4),
    )
        .prop_map(|(tx, rx, freqs)| MicrowavePath {
            tx,
            rx,
            frequencies: freqs
                .into_iter()
                .map(|mhz| FrequencyAssignment {
                    center_hz: (mhz * 1e6 * 1e-5).round() * 1e5,
                })
                .collect(),
        })
}

fn arb_license(id: u64) -> impl Strategy<Value = License> {
    (
        "[A-Za-z ]{1,24}",
        prop_oneof![
            Just(RadioService::MG),
            Just(RadioService::CF),
            Just(RadioService::Other("ZZ".into()))
        ],
        prop_oneof![Just(StationClass::FXO), Just(StationClass::FB)],
        arb_date(),
        proptest::option::of(arb_date()),
        proptest::option::of(arb_date()),
        proptest::collection::vec(arb_path(), 1..4),
    )
        .prop_map(
            move |(licensee, service, class, grant, term, cancel, paths)| License {
                id: LicenseId(id),
                call_sign: CallSign(format!("WQ{id:05}")),
                licensee,
                service,
                station_class: class,
                grant_date: grant,
                termination_date: term,
                cancellation_date: cancel,
                paths,
            },
        )
}

fn arb_corpus() -> impl Strategy<Value = Vec<License>> {
    proptest::collection::vec(proptest::num::u8::ANY, 1..6).prop_flat_map(|seeds| {
        seeds
            .into_iter()
            .enumerate()
            .map(|(i, _)| arb_license(i as u64 + 1))
            .collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flat_file_round_trip(corpus in arb_corpus()) {
        let text = encode(&corpus);
        let back = decode(&text).unwrap();
        prop_assert_eq!(back.len(), corpus.len());
        for (b, o) in back.iter().zip(&corpus) {
            prop_assert_eq!(b.id, o.id);
            prop_assert_eq!(&b.licensee, &o.licensee);
            prop_assert_eq!(&b.service, &o.service);
            prop_assert_eq!(&b.station_class, &o.station_class);
            prop_assert_eq!(b.grant_date, o.grant_date);
            prop_assert_eq!(b.termination_date, o.termination_date);
            prop_assert_eq!(b.cancellation_date, o.cancellation_date);
            prop_assert_eq!(b.paths.len(), o.paths.len());
            for (bp, op) in b.paths.iter().zip(&o.paths) {
                // DMS text keeps ~0.1 arc-second (~3 m) of precision.
                prop_assert!((bp.tx.position.lat_deg() - op.tx.position.lat_deg()).abs() < 1e-4);
                prop_assert!((bp.tx.position.lon_deg() - op.tx.position.lon_deg()).abs() < 1e-4);
                prop_assert!((bp.rx.position.lat_deg() - op.rx.position.lat_deg()).abs() < 1e-4);
                prop_assert!((bp.rx.position.lon_deg() - op.rx.position.lon_deg()).abs() < 1e-4);
                prop_assert!((bp.tx.ground_elevation_m - op.tx.ground_elevation_m).abs() < 0.05 + 1e-9);
                prop_assert_eq!(bp.frequencies.len(), op.frequencies.len());
                for (bf, of) in bp.frequencies.iter().zip(&op.frequencies) {
                    prop_assert!((bf.center_hz - of.center_hz).abs() < 10.0);
                }
            }
        }
    }

    #[test]
    fn encode_is_deterministic(corpus in arb_corpus()) {
        prop_assert_eq!(encode(&corpus), encode(&corpus));
    }

    #[test]
    fn double_round_trip_is_fixed_point(corpus in arb_corpus()) {
        // After one round trip the representation must be stable.
        let once = decode(&encode(&corpus)).unwrap();
        let twice = decode(&encode(&once)).unwrap();
        prop_assert_eq!(once, twice);
    }
}
