//! Robustness fuzzing: the flat-file decoder must never panic, no matter
//! how a valid dump is mutated or what garbage it is fed — it must always
//! return `Ok` or a structured `DecodeError`.

use hft_geodesy::LatLon;
use hft_time::Date;
use hft_uls::flatfile::{decode, encode};
use hft_uls::{
    CallSign, FrequencyAssignment, License, LicenseId, MicrowavePath, RadioService, StationClass,
    TowerSite,
};
use proptest::prelude::*;

fn sample_corpus() -> Vec<License> {
    let site = |lat: f64, lon: f64| TowerSite {
        position: LatLon::new(lat, lon).unwrap(),
        ground_elevation_m: 230.0,
        structure_height_m: 110.0,
    };
    (1..=3u64)
        .map(|id| License {
            id: LicenseId(id),
            call_sign: CallSign(format!("WQ{id:05}")),
            licensee: format!("Licensee {id}"),
            service: RadioService::MG,
            station_class: StationClass::FXO,
            grant_date: Date::new(2015, 3, 1).unwrap(),
            termination_date: Some(Date::new(2025, 3, 1).unwrap()),
            cancellation_date: (id == 2).then(|| Date::new(2018, 1, 1).unwrap()),
            paths: vec![MicrowavePath {
                tx: site(41.7 + id as f64 * 0.05, -88.0),
                rx: site(41.7, -87.5 + id as f64 * 0.1),
                frequencies: vec![FrequencyAssignment {
                    center_hz: 6.0e9 + id as f64 * 1e7,
                }],
            }],
        })
        .collect()
}

/// Apply one mutation to the text.
fn mutate(text: &str, kind: u8, pos: usize, payload: char) -> String {
    let mut s: Vec<char> = text.chars().collect();
    if s.is_empty() {
        return payload.to_string();
    }
    let pos = pos % s.len();
    match kind % 4 {
        0 => s[pos] = payload,       // replace
        1 => s.insert(pos, payload), // insert
        2 => {
            s.remove(pos); // delete
        }
        _ => {
            // Swap two lines.
            let text: String = s.iter().collect();
            let mut lines: Vec<&str> = text.lines().collect();
            if lines.len() >= 2 {
                let a = pos % lines.len();
                let b = (pos / 7 + 1) % lines.len();
                lines.swap(a, b);
            }
            return lines.join("\n");
        }
    }
    s.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn mutated_dump_never_panics(kind in 0u8..4, pos in 0usize..100_000, payload in proptest::char::any()) {
        let text = encode(&sample_corpus());
        let mutated = mutate(&text, kind, pos, payload);
        // Must not panic; any Result is acceptable.
        let _ = decode(&mutated);
    }

    #[test]
    fn double_mutation_never_panics(
        k1 in 0u8..4, p1 in 0usize..100_000, c1 in proptest::char::any(),
        k2 in 0u8..4, p2 in 0usize..100_000, c2 in proptest::char::any(),
    ) {
        let text = encode(&sample_corpus());
        let mutated = mutate(&mutate(&text, k1, p1, c1), k2, p2, c2);
        let _ = decode(&mutated);
    }

    #[test]
    fn arbitrary_text_never_panics(text in "\\PC{0,400}") {
        let _ = decode(&text);
    }

    #[test]
    fn arbitrary_pipe_records_never_panic(
        records in proptest::collection::vec(
            (prop_oneof![Just("HD"), Just("EN"), Just("LO"), Just("PA"), Just("FR"), Just("ZZ")],
             proptest::collection::vec("[-0-9A-Za-z ./]{0,12}", 0..9)),
            0..12,
        )
    ) {
        let text: String = records
            .iter()
            .map(|(kind, fields)| format!("{kind}|{}\n", fields.join("|")))
            .collect();
        let _ = decode(&text);
    }
}
