//! End-to-end flow through the tracing layer: a traced root backdated
//! to an admission instant, an annotated queue-wait interval, captured
//! scatter subtrees grafted back, and the finished tree landing in the
//! flight recorder. Lives in its own binary because it owns the
//! process-global sampling/threshold knobs.

use hft_obs::{
    annotate, capture_from, clear_traces, current_root_start, find_trace, graft,
    set_slow_threshold_ns, set_trace_sample_every, span, span_sharded, trace_root, trace_snapshot,
    TraceContext,
};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes the tests: both touch the process-global flight recorder
/// and `clear_traces` must not race a concurrent recording test.
static GLOBALS: Mutex<()> = Mutex::new(());

#[test]
fn traced_scatter_request_is_stitched_and_recorded() {
    let _globals = GLOBALS.lock().expect("globals");
    set_trace_sample_every(1);
    set_slow_threshold_ns(u64::MAX);
    clear_traces();

    assert_eq!(current_root_start(), None, "no tree open yet");

    let admitted = Instant::now();
    std::thread::sleep(Duration::from_millis(2)); // simulated queue wait
    let ctx = TraceContext::mint();
    assert!(ctx.sampled, "stride 1 samples every mint");

    {
        let _root = trace_root("serve.request", "geographic", ctx, admitted);
        annotate("queue.wait", 0, admitted.elapsed().as_nanos() as u64);
        let base = current_root_start().expect("root open");
        assert_eq!(base, admitted, "root clock backdated to admission");

        let _scatter = span("router.scatter");
        // Two scatter legs on worker threads, captured against the
        // coordinator's clock and grafted back under router.scatter.
        let legs: Vec<_> = std::thread::scope(|scope| {
            (0..2u32)
                .map(|k| {
                    scope.spawn(move || {
                        capture_from("shard.call", base, Some(k), || {
                            std::thread::sleep(Duration::from_millis(1));
                            k
                        })
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("leg"))
                .collect()
        });
        for (_k, tree) in legs {
            graft(tree.expect("captured subtree"));
        }
        drop(_scatter);
        let _merge = span_sharded("router.merge", 0);
    }

    let rec = find_trace(ctx.trace_id).expect("trace recorded");
    assert_eq!(rec.label, "geographic");
    assert!(rec.sampled && !rec.slow);
    rec.tree.check().expect("stitched tree stays well-formed");

    let names: Vec<&str> = rec.tree.spans.iter().map(|s| s.name).collect();
    assert_eq!(
        names,
        [
            "serve.request",
            "queue.wait",
            "router.scatter",
            "shard.call",
            "shard.call",
            "router.merge"
        ]
    );
    let shards: Vec<Option<u32>> = rec.tree.spans.iter().map(|s| s.shard).collect();
    assert_eq!(
        shards[3..5],
        [Some(0), Some(1)],
        "legs keep their shard tags"
    );
    assert_eq!(shards[5], Some(0), "span_sharded tags the merge");

    // queue.wait is inside the backdated root window and ~2ms long.
    let wait = &rec.tree.spans[1];
    assert!(
        wait.dur_ns >= 1_500_000,
        "queue wait measured: {}",
        wait.dur_ns
    );
    assert!(wait.start_ns + wait.dur_ns <= rec.total_ns);

    // Non-destructive snapshot surfaces the same record, slowest first.
    let snap = trace_snapshot(16);
    assert!(snap.iter().any(|r| r.trace_id == ctx.trace_id));
    assert!(find_trace(ctx.trace_id).is_some(), "snapshot did not drain");
}

#[test]
fn untraced_and_nested_paths_degrade_gracefully() {
    let _globals = GLOBALS.lock().expect("globals");
    set_trace_sample_every(1);
    set_slow_threshold_ns(u64::MAX);

    // An unsampled context records nothing.
    let quiet = TraceContext {
        trace_id: 42,
        span_id: 7,
        sampled: false,
    };
    {
        let _root = trace_root("serve.request", "stats", quiet, Instant::now());
    }
    assert!(find_trace(42).is_none(), "unsampled, fast: not kept");

    // trace_root under an open tree degrades to a plain child span and
    // must not re-origin or re-label the outer trace.
    let outer = TraceContext::mint();
    let inner = TraceContext::mint();
    {
        let _root = trace_root("serve.request", "outer", outer, Instant::now());
        let _nested = trace_root("serve.request", "inner", inner, Instant::now());
    }
    let rec = find_trace(outer.trace_id).expect("outer trace kept");
    assert_eq!(rec.label, "outer");
    assert_eq!(rec.tree.spans.len(), 2);
    assert_eq!(rec.tree.spans[1].parent, Some(0));
    assert!(find_trace(inner.trace_id).is_none());

    // capture_from with a tree already open: work still runs, no tree.
    {
        let _root = span("serve.request");
        let (value, tree) = capture_from("shard.call", Instant::now(), Some(1), || 9);
        assert_eq!(value, 9);
        assert!(tree.is_none());
    }

    // graft/annotate with nothing open are no-ops.
    graft(hft_obs::SpanTree {
        spans: vec![hft_obs::SpanRecord {
            name: "orphan",
            parent: None,
            start_ns: 0,
            dur_ns: 1,
            shard: None,
        }],
    });
    annotate("orphan", 0, 1);
    assert_eq!(current_root_start(), None);
}
