//! Property tests for histogram correctness (ISSUE 5 satellite):
//! sharded recording merges to exactly the single-shard result, and
//! bucketed percentiles stay within one bucket width of the exact
//! order statistics of the recorded stream.

use hft_obs::hist::{bucket_bounds, bucket_index, Histogram, HistogramShard};
use proptest::prelude::*;

/// Value streams spanning the interesting ranges: exact unit buckets,
/// mid-range latencies, and large outliers.
fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..64,
            64u64..100_000,
            100_000u64..10_000_000_000,
            Just(u64::MAX),
        ],
        1..400,
    )
}

proptest! {
    /// Splitting a stream across shards and merging — in either
    /// direction (shard→shard or shards→atomic histogram) — yields the
    /// same snapshot as recording everything into one place.
    #[test]
    fn merged_shards_equal_single_shard(vals in values(), nshards in 1usize..8) {
        let mut single = HistogramShard::new();
        let mut shards = vec![HistogramShard::new(); nshards];
        let atomic = Histogram::new();
        for (i, &v) in vals.iter().enumerate() {
            single.record(v);
            shards[i % nshards].record(v);
        }
        let mut merged = HistogramShard::new();
        for s in &shards {
            merged.merge(s);
            atomic.merge_shard(s);
        }
        prop_assert_eq!(merged.snapshot(), single.snapshot());
        prop_assert_eq!(atomic.snapshot(), single.snapshot());
    }

    /// The bucketed nearest-rank percentile lands inside the bucket of
    /// the exact order statistic — i.e. within one bucket width.
    #[test]
    fn percentiles_within_one_bucket_width(vals in values()) {
        let mut shard = HistogramShard::new();
        for &v in &vals {
            shard.record(v);
        }
        let snap = shard.snapshot();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.5f64, 0.9, 0.99, 0.999] {
            let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
            let exact = sorted[rank];
            let est = snap.percentile(q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            prop_assert!(
                lo <= est && est <= hi,
                "q={} exact={} (bucket [{}, {}]) estimate={}",
                q, exact, lo, hi, est
            );
        }
    }

    /// Bucket index is monotone and bounds always contain the value —
    /// the two facts the percentile argument rests on.
    #[test]
    fn bucketing_is_sound(v in proptest::num::u64::ANY, w in proptest::num::u64::ANY) {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        prop_assert!(lo <= v && v <= hi);
        if v <= w {
            prop_assert!(bucket_index(v) <= bucket_index(w));
        }
    }
}
