//! Span-nesting integration test (ISSUE 5 satellite): a forced slow
//! request must produce a well-formed tree — no orphaned or
//! negative-duration spans — and exactly one slow-query-log entry.
//!
//! Runs as its own test binary because it owns the process-global
//! tracing knobs (slow threshold, sampling stride, kill switch).

use hft_obs::{
    set_enabled, set_sample_every, set_slow_threshold_ns, span, take_samples, take_slow_queries,
};
use std::time::Duration;

/// The canonical request shape from the ISSUE:
/// `serve.request > singleflight.wait > session.networks > route.apa`.
fn run_request(slow: bool) {
    let _root = span("serve.request");
    {
        let _wait = span("singleflight.wait");
        if slow {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    {
        let _net = span("session.networks");
        let _apa = span("route.apa");
        if slow {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

// One test function: the tracing knobs (threshold, stride, kill
// switch) are process-global, so concurrent #[test]s would race on
// them.
#[test]
fn slow_request_yields_one_well_formed_tree() {
    take_slow_queries();
    set_sample_every(0);

    // Fast requests below the threshold never reach the slow log.
    set_slow_threshold_ns(u64::MAX);
    for _ in 0..10 {
        run_request(false);
    }
    assert!(take_slow_queries().is_empty(), "no slow entries expected");

    // One forced slow request -> exactly one slow-log entry.
    set_slow_threshold_ns(1_000_000); // 1 ms, far below the forced 10 ms
    run_request(true);
    set_slow_threshold_ns(u64::MAX);
    let slow = take_slow_queries();
    assert_eq!(slow.len(), 1, "exactly one slow-query-log entry");
    let tree = &slow[0];

    // Well-formed: single root, parents precede children, children
    // nest inside their parent's window (durations are u64, so a
    // negative duration cannot even be represented; `check` verifies
    // the windows are consistent).
    tree.check().expect("tree must be well-formed");
    let names: Vec<&str> = tree.spans.iter().map(|s| s.name).collect();
    assert_eq!(
        names,
        [
            "serve.request",
            "singleflight.wait",
            "session.networks",
            "route.apa"
        ]
    );
    assert_eq!(tree.spans[0].parent, None);
    assert_eq!(tree.spans[1].parent, Some(0));
    assert_eq!(tree.spans[2].parent, Some(0));
    assert_eq!(tree.spans[3].parent, Some(2), "route.apa nests in networks");
    assert!(tree.total_ns() >= 10_000_000, "two 5 ms sleeps inside");
    assert!(tree.spans[1].dur_ns <= tree.total_ns());

    // The rendering indents by depth.
    let rendered = tree.render();
    assert!(rendered.starts_with("serve.request "));
    assert!(rendered.contains("\n  singleflight.wait "));
    assert!(rendered.contains("\n    route.apa "));

    // --- Sampling and the kill switch ---
    take_samples();

    // Sampling stride 1 keeps every completed tree in the thread ring.
    set_sample_every(1);
    run_request(false);
    run_request(false);
    let samples = take_samples();
    assert_eq!(samples.len(), 2);
    for t in &samples {
        t.check().expect("sampled trees are well-formed too");
        assert_eq!(t.spans.len(), 4);
    }

    // Stride 0 disables sampling entirely.
    set_sample_every(0);
    run_request(false);
    assert!(take_samples().is_empty());

    // The kill switch suppresses capture altogether.
    set_sample_every(1);
    set_enabled(false);
    run_request(false);
    set_enabled(true);
    assert!(take_samples().is_empty(), "disabled spans record nothing");

    // Re-enabled, capture resumes.
    run_request(false);
    assert_eq!(take_samples().len(), 1);
}
