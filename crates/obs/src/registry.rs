//! The global metric registry: name → handle, with deterministic
//! (sorted) snapshots for exposition.
//!
//! Registration takes a mutex; recording does not. The intended idiom
//! is to resolve `Arc` handles once — at struct construction or behind
//! a `OnceLock` — and record through the cached handle, so the hot path
//! is exactly the atomic ops of the metric itself.
//!
//! Names are dotted paths (`serve.completed`, `session.reconstruct_ns`).
//! Labeled variants append a Prometheus-style selector to the name
//! (`ingest.quarantined{reason="bad_frame"}`); since a `BTreeMap` keys
//! the registry, exposition order is total and stable.

use crate::hist::Histogram;
use crate::metrics::{Counter, Gauge};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A set of named metrics. Usually accessed through [`global`]; tests
/// may build private registries.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// Render the `name{key="value"}` form of a labeled metric.
pub fn labeled(name: &str, key: &str, value: &str) -> String {
    format!("{name}{{{key}=\"{value}\"}}")
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or create the counter `name{key="value"}`.
    pub fn counter_with(&self, name: &str, key: &str, value: &str) -> Arc<Counter> {
        self.counter(&labeled(name, key, value))
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge registry");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// A deterministic point-in-time copy: every metric, sorted by
    /// name, histograms reduced to their summary quantiles.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry")
            .iter()
            .map(|(name, c)| (name.clone(), c.value()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry")
            .iter()
            .map(|(name, g)| (name.clone(), g.value()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry")
            .iter()
            .map(|(name, h)| (name.clone(), HistSummary::of(&h.snapshot())))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The summary quantiles of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSummary {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistSummary {
    /// Reduce a snapshot to its summary.
    pub fn of(s: &crate::hist::HistogramSnapshot) -> HistSummary {
        HistSummary {
            count: s.count,
            sum: s.sum,
            min: s.min,
            max: s.max,
            p50: s.percentile(0.50),
            p90: s.percentile(0.90),
            p99: s.percentile(0.99),
            p999: s.percentile(0.999),
        }
    }
}

/// A deterministic copy of a [`Registry`]: every vector sorted by
/// metric name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistSummary)>,
}

impl RegistrySnapshot {
    /// Look up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram summary by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// The change between two [`RegistrySnapshot`]s of the same registry:
/// what a workload did, with whatever ran before it subtracted out.
/// Produced by [`delta`]; load generators print these instead of
/// absolute totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistryDelta {
    /// Counter increments (absent in `before` counts as zero).
    pub counters: Vec<(String, u64)>,
    /// Gauge movements.
    pub gauges: Vec<(String, i64)>,
    /// Histogram growth (count/sum only: quantiles of a difference are
    /// not derivable from two summaries).
    pub histograms: Vec<(String, HistDelta)>,
}

/// Growth of one histogram between two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistDelta {
    /// Values recorded in the window.
    pub count: u64,
    /// Sum of values recorded in the window.
    pub sum: u64,
}

impl HistDelta {
    /// Mean recorded value over the window (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl RegistryDelta {
    /// Counter increment by exact name (0 when the counter never moved
    /// or never existed).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Gauge movement by exact name (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Histogram growth by exact name (empty delta when absent).
    pub fn histogram(&self, name: &str) -> HistDelta {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, h)| h)
            .unwrap_or_default()
    }
}

/// The per-metric difference `after − before`. Metrics only present in
/// `after` are treated as having started at zero; counter and histogram
/// subtraction saturates, so a metric that went backwards between the
/// snapshots (a reset) reads as zero rather than wrapping.
pub fn delta(before: &RegistrySnapshot, after: &RegistrySnapshot) -> RegistryDelta {
    let counters = after
        .counters
        .iter()
        .map(|(name, v)| {
            (
                name.clone(),
                v.saturating_sub(before.counter(name).unwrap_or(0)),
            )
        })
        .collect();
    let gauges = after
        .gauges
        .iter()
        .map(|(name, v)| (name.clone(), v - before.gauge(name).unwrap_or(0)))
        .collect();
    let histograms = after
        .histograms
        .iter()
        .map(|(name, h)| {
            let b = before.histogram(name).copied().unwrap_or_default();
            (
                name.clone(),
                HistDelta {
                    count: h.count.saturating_sub(b.count),
                    sum: h.sum.saturating_sub(b.sum),
                },
            )
        })
        .collect();
    RegistryDelta {
        counters,
        gauges,
        histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_alias_by_name() {
        let r = Registry::new();
        let a = r.counter("x.events");
        let b = r.counter("x.events");
        a.add(3);
        b.incr();
        assert_eq!(r.counter("x.events").value(), 4);
        assert_eq!(
            r.counter_with("x.q", "reason", "bad").value(),
            0,
            "labeled counter is distinct"
        );
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b.second").incr();
        r.counter("a.first").add(2);
        r.gauge("z.depth").set(-7);
        r.histogram("m.lat_ns").record(1500);
        r.histogram("m.lat_ns").record(3000);
        let s = r.snapshot();
        let names: Vec<&str> = s.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.first", "b.second"]);
        assert_eq!(s.counter("a.first"), Some(2));
        assert_eq!(s.gauge("z.depth"), Some(-7));
        let h = s.histogram("m.lat_ns").unwrap();
        assert_eq!(h.count, 2);
        assert!(h.p50 >= h.min && h.p999 <= h.max.max(h.p999));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn labeled_renders_prometheus_selector() {
        assert_eq!(labeled("a.b", "k", "v"), "a.b{k=\"v\"}");
    }

    #[test]
    fn delta_subtracts_and_defaults_to_zero() {
        let before = RegistrySnapshot {
            counters: vec![("a.hits".into(), 10), ("a.reset".into(), 99)],
            gauges: vec![("q.depth".into(), 4)],
            histograms: vec![(
                "l.ns".into(),
                HistSummary {
                    count: 5,
                    sum: 500,
                    ..HistSummary::default()
                },
            )],
        };
        let after = RegistrySnapshot {
            counters: vec![
                ("a.hits".into(), 25),
                ("a.new".into(), 7),
                ("a.reset".into(), 3),
            ],
            gauges: vec![("q.depth".into(), 1)],
            histograms: vec![(
                "l.ns".into(),
                HistSummary {
                    count: 9,
                    sum: 1700,
                    ..HistSummary::default()
                },
            )],
        };
        let d = delta(&before, &after);
        assert_eq!(d.counter("a.hits"), 15);
        assert_eq!(d.counter("a.new"), 7, "born-after counter starts at 0");
        assert_eq!(d.counter("a.reset"), 0, "saturates instead of wrapping");
        assert_eq!(d.counter("never.existed"), 0);
        assert_eq!(d.gauge("q.depth"), -3);
        let h = d.histogram("l.ns");
        assert_eq!((h.count, h.sum), (4, 1200));
        assert_eq!(h.mean(), 300.0);
        assert_eq!(d.histogram("missing").count, 0);
        assert_eq!(d.histogram("missing").mean(), 0.0);
    }
}
