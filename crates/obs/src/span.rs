//! Lightweight span tracing: scoped guards capture nested timing trees
//! per thread, completed trees are sampled into a per-thread ring, and
//! any tree whose root exceeds the slow threshold lands in a global
//! slow-query log.
//!
//! # Model
//!
//! [`span`] opens a span on the current thread and returns a guard;
//! dropping the guard closes it. Guards nest lexically (they are
//! `!Send` scope guards), so the per-thread open stack always closes in
//! LIFO order and a finished tree can never contain an orphaned span.
//! When the *root* guard drops, the whole tree is finalized at once:
//!
//! * root duration ≥ [`slow_threshold_ns`] → pushed to the global slow
//!   log (bounded; oldest entries fall off) and `obs.slow_queries` is
//!   bumped in the global registry;
//! * otherwise every `sample_every`-th tree is kept in a per-thread
//!   ring buffer ([`take_samples`]).
//!
//! Trees are per thread by construction; cross-thread requests are
//! stitched explicitly: a scatter worker runs under [`capture_from`]
//! (same time origin as the caller's root) and the caller [`graft`]s
//! the returned subtree under its own open span, so a fan-out request
//! still finalizes as one tree on the coordinating thread.
//!
//! A tree opened with [`trace_root`] additionally carries a
//! [`crate::trace::TraceContext`]; when such a tree finalizes and was
//! head-sampled or slow, a copy is filed into the flight recorder
//! ([`crate::trace`]) keyed by trace id.
//!
//! All bookkeeping is thread-local; the only shared state touched on a
//! hot path is one relaxed load of the kill switch, and the slow-log
//! mutex is taken only when a slow tree actually completes.

use crate::trace::TraceContext;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Slow-log capacity; oldest entries are dropped beyond this.
pub const SLOW_LOG_CAP: usize = 32;
/// Per-thread sampled-tree ring capacity.
pub const SAMPLE_RING_CAP: usize = 16;

/// Default slow threshold: 50 ms.
const DEFAULT_SLOW_NS: u64 = 50_000_000;
/// Default sampling stride: every 64th completed tree.
const DEFAULT_SAMPLE_EVERY: u64 = 64;

static SLOW_NS: AtomicU64 = AtomicU64::new(DEFAULT_SLOW_NS);
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(DEFAULT_SAMPLE_EVERY);
static SLOW_LOG: Mutex<VecDeque<SpanTree>> = Mutex::new(VecDeque::new());

/// Set the root-duration threshold (ns) above which a completed tree
/// enters the slow-query log.
pub fn set_slow_threshold_ns(ns: u64) {
    SLOW_NS.store(ns, Ordering::SeqCst);
}

/// The current slow threshold in nanoseconds.
pub fn slow_threshold_ns() -> u64 {
    SLOW_NS.load(Ordering::Relaxed)
}

/// Keep every `n`-th completed (non-slow) tree in the per-thread sample
/// ring; `0` disables sampling.
pub fn set_sample_every(n: u64) {
    SAMPLE_EVERY.store(n, Ordering::SeqCst);
}

/// The current sampling stride.
pub fn sample_every() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// Drain the global slow-query log, oldest first.
pub fn take_slow_queries() -> Vec<SpanTree> {
    SLOW_LOG.lock().expect("slow log").drain(..).collect()
}

/// Drain the calling thread's sampled-tree ring, oldest first.
pub fn take_samples() -> Vec<SpanTree> {
    TLS.with(|t| t.borrow_mut().samples.drain(..).collect())
}

/// One closed span inside a [`SpanTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (dotted taxonomy, e.g. `serve.request`).
    pub name: &'static str,
    /// Index of the parent span within the tree; `None` for the root.
    pub parent: Option<u32>,
    /// Start offset from the root's start, ns.
    pub start_ns: u64,
    /// Duration, ns (u64: negative durations cannot be represented).
    pub dur_ns: u64,
    /// Shard the span ran against, when the work was shard-addressed
    /// (scatter legs, routed single-shard calls).
    pub shard: Option<u32>,
}

/// A completed per-thread span tree, root first, parents before
/// children (preorder by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTree {
    /// The spans; index 0 is the root.
    pub spans: Vec<SpanRecord>,
}

impl SpanTree {
    /// The root span.
    pub fn root(&self) -> &SpanRecord {
        &self.spans[0]
    }

    /// Total duration (the root's), ns.
    pub fn total_ns(&self) -> u64 {
        self.root().dur_ns
    }

    /// Structural validity: exactly one root at index 0, every parent
    /// precedes its child, and every child runs within its parent's
    /// window. Returns a description of the first violation.
    pub fn check(&self) -> Result<(), String> {
        if self.spans.is_empty() {
            return Err("empty tree".to_string());
        }
        if self.spans[0].parent.is_some() {
            return Err("span 0 is not a root".to_string());
        }
        for (i, s) in self.spans.iter().enumerate().skip(1) {
            let Some(p) = s.parent else {
                return Err(format!("span {i} ({}) is an orphaned second root", s.name));
            };
            let p = p as usize;
            if p >= i {
                return Err(format!("span {i} ({}) has forward parent {p}", s.name));
            }
            let parent = &self.spans[p];
            if s.start_ns < parent.start_ns
                || s.start_ns + s.dur_ns > parent.start_ns + parent.dur_ns
            {
                return Err(format!(
                    "span {i} ({}) [{}, +{}] escapes parent {} ({}) [{}, +{}]",
                    s.name, s.start_ns, s.dur_ns, p, parent.name, parent.start_ns, parent.dur_ns
                ));
            }
        }
        Ok(())
    }

    /// An indented one-span-per-line rendering for logs.
    pub fn render(&self) -> String {
        let mut depth = vec![0usize; self.spans.len()];
        let mut out = String::new();
        for (i, s) in self.spans.iter().enumerate() {
            if let Some(p) = s.parent {
                depth[i] = depth[p as usize] + 1;
            }
            for _ in 0..depth[i] {
                out.push_str("  ");
            }
            out.push_str(s.name);
            out.push(' ');
            out.push_str(&format_ns(s.dur_ns));
            if let Some(shard) = s.shard {
                out.push_str(&format!(" [shard {shard}]"));
            }
            out.push('\n');
        }
        out
    }
}

/// Human-scale duration rendering (`873ns`, `14.2us`, `3.4ms`, `1.20s`).
pub fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

struct ThreadSpans {
    spans: Vec<SpanRecord>,
    open: Vec<u32>,
    root_start: Option<Instant>,
    completed: u64,
    samples: VecDeque<SpanTree>,
    /// Trace identity the current tree was opened with ([`trace_root`]).
    trace: Option<(TraceContext, &'static str)>,
    /// When set, the finishing tree is stashed in `captured` for the
    /// caller of [`capture_from`] instead of being filed.
    capture: bool,
    captured: Option<SpanTree>,
}

thread_local! {
    static TLS: RefCell<ThreadSpans> = const {
        RefCell::new(ThreadSpans {
            spans: Vec::new(),
            open: Vec::new(),
            root_start: None,
            completed: 0,
            samples: VecDeque::new(),
            trace: None,
            capture: false,
            captured: None,
        })
    };
}

fn open_span(name: &'static str, shard: Option<u32>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            active: false,
            _not_send: PhantomData,
        };
    }
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let start_ns = match t.root_start {
            Some(root) => root.elapsed().as_nanos() as u64,
            None => {
                t.root_start = Some(Instant::now());
                0
            }
        };
        let parent = t.open.last().copied();
        let idx = t.spans.len() as u32;
        t.spans.push(SpanRecord {
            name,
            parent,
            start_ns,
            dur_ns: 0,
            shard,
        });
        t.open.push(idx);
    });
    SpanGuard {
        active: true,
        _not_send: PhantomData,
    }
}

/// Open a span named `name` on the current thread. Close it by
/// dropping the guard; guards must nest lexically (the guard is not
/// `Send` and should be bound to a scope).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, None)
}

/// Like [`span`], tagging the record with the shard the work is
/// addressed to (scatter legs, routed single-shard calls).
#[inline]
pub fn span_sharded(name: &'static str, shard: u32) -> SpanGuard {
    open_span(name, Some(shard))
}

/// Like [`span`], but records only when a tree is already open on this
/// thread. A lone child would otherwise finalize as a single-span root
/// tree — full tree bookkeeping (two clock reads, finalize, ring
/// bookkeeping) for a record nothing can attribute to a request. Use
/// it for hot-path markers (single-flight legs, cache-hit markers)
/// that are only meaningful inside an enclosing traced request.
pub fn child_span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            active: false,
            _not_send: PhantomData,
        };
    }
    let active = TLS.with(|t| {
        let mut t = t.borrow_mut();
        if t.open.is_empty() {
            return false;
        }
        let start_ns = match t.root_start {
            Some(root) => root.elapsed().as_nanos() as u64,
            None => 0,
        };
        let parent = t.open.last().copied();
        let idx = t.spans.len() as u32;
        t.spans.push(SpanRecord {
            name,
            parent,
            start_ns,
            dur_ns: 0,
            shard: None,
        });
        t.open.push(idx);
        true
    });
    SpanGuard {
        active,
        _not_send: PhantomData,
    }
}

/// Open a **traced root** span: the tree's time origin is backdated to
/// `started` (typically the instant the request was admitted, so queue
/// wait falls inside the window), and the finished tree is filed into
/// the flight recorder under `ctx` when head-sampled or slow. `label`
/// names the request kind on the resulting trace record.
///
/// If a tree is already open on this thread the call degrades to a
/// plain child [`span`] — nested roots cannot re-origin the clock.
pub fn trace_root(
    name: &'static str,
    label: &'static str,
    ctx: TraceContext,
    started: Instant,
) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            active: false,
            _not_send: PhantomData,
        };
    }
    let fresh = TLS.with(|t| {
        let mut t = t.borrow_mut();
        if !t.open.is_empty() {
            return false;
        }
        t.root_start = Some(started);
        if ctx.trace_id != 0 {
            t.trace = Some((ctx, label));
        }
        t.spans.push(SpanRecord {
            name,
            parent: None,
            start_ns: 0,
            dur_ns: 0,
            shard: None,
        });
        t.open.push(0);
        true
    });
    if !fresh {
        return span(name);
    }
    SpanGuard {
        active: true,
        _not_send: PhantomData,
    }
}

/// Attach a pre-measured, already-closed child span to the innermost
/// open span (no-op when no span is open). `start_ns` is the offset
/// from the current tree's time origin. Used for intervals measured
/// before the tree existed, e.g. queue wait under a [`trace_root`]
/// backdated to the enqueue instant.
pub fn annotate(name: &'static str, start_ns: u64, dur_ns: u64) {
    if !crate::enabled() {
        return;
    }
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let Some(&parent) = t.open.last() else {
            return;
        };
        t.spans.push(SpanRecord {
            name,
            parent: Some(parent),
            start_ns,
            dur_ns,
            shard: None,
        });
    });
}

/// The time origin of the tree currently open on this thread, if any.
/// Scatter coordinators pass it to worker threads so captured subtrees
/// share the same clock (see [`capture_from`] / [`graft`]).
pub fn current_root_start() -> Option<Instant> {
    if !crate::enabled() {
        return None;
    }
    TLS.with(|t| {
        let t = t.borrow();
        if t.open.is_empty() {
            None
        } else {
            t.root_start
        }
    })
}

/// Run `f` under a span named `name` on the *current* thread and return
/// the finished subtree instead of filing it, with every span offset
/// measured from `base` (the coordinating thread's root origin). The
/// caller moves the subtree back and [`graft`]s it under its own tree.
/// `shard` is stamped on every captured span that has no shard yet.
///
/// If this thread already has a tree open the subtree cannot be
/// re-origined; `f` runs under a plain [`span`] and `None` is returned.
pub fn capture_from<R>(
    name: &'static str,
    base: Instant,
    shard: Option<u32>,
    f: impl FnOnce() -> R,
) -> (R, Option<SpanTree>) {
    if !crate::enabled() {
        return (f(), None);
    }
    let fresh = TLS.with(|t| {
        let mut t = t.borrow_mut();
        if !t.open.is_empty() {
            return false;
        }
        t.root_start = Some(base);
        t.capture = true;
        true
    });
    if !fresh {
        let _nested = span(name);
        return (f(), None);
    }
    let r = {
        let _root = span(name);
        f()
    };
    let mut tree = TLS.with(|t| t.borrow_mut().captured.take());
    if let Some(tree) = tree.as_mut() {
        for s in &mut tree.spans {
            if s.shard.is_none() {
                s.shard = shard;
            }
        }
    }
    (r, tree)
}

/// Append a subtree captured by [`capture_from`] (same time origin)
/// under the innermost open span of the current thread's tree. No-op
/// when no span is open.
pub fn graft(tree: SpanTree) {
    if !crate::enabled() {
        return;
    }
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let Some(&parent) = t.open.last() else {
            return;
        };
        let offset = t.spans.len() as u32;
        for mut s in tree.spans {
            s.parent = match s.parent {
                None => Some(parent),
                Some(p) => Some(p + offset),
            };
            t.spans.push(s);
        }
    });
}

/// The scope guard returned by [`span`]; dropping it closes the span.
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let finished = TLS.with(|t| {
            let mut t = t.borrow_mut();
            let Some(idx) = t.open.pop() else {
                return None; // tree was torn down mid-flight; ignore
            };
            let end_ns = t
                .root_start
                .map(|root| root.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            let rec = &mut t.spans[idx as usize];
            rec.dur_ns = end_ns.saturating_sub(rec.start_ns);
            if !t.open.is_empty() {
                return None;
            }
            // Root closed: take the whole tree.
            let spans = std::mem::take(&mut t.spans);
            t.root_start = None;
            let trace = t.trace.take();
            let tree = SpanTree { spans };
            if t.capture {
                // A capture_from subtree: hand it back, don't file it.
                t.capture = false;
                t.captured = Some(tree);
                return None;
            }
            t.completed += 1;
            let tick = t.completed;
            if tree.total_ns() >= slow_threshold_ns() {
                Some((tree, true, tick, trace))
            } else {
                Some((tree, false, tick, trace))
            }
        });
        let Some((tree, slow, tick, trace)) = finished else {
            return;
        };
        // File a flight-recorder copy before the tree itself moves into
        // the slow log / sample ring (clone only for kept traces).
        if let Some((ctx, label)) = trace {
            if ctx.sampled || slow {
                crate::trace::record(crate::trace::TraceRecord {
                    trace_id: ctx.trace_id,
                    label,
                    sampled: ctx.sampled,
                    slow,
                    total_ns: tree.total_ns(),
                    tree: tree.clone(),
                });
            }
        }
        if slow {
            crate::global().counter("obs.slow_queries").incr();
            let mut log = SLOW_LOG.lock().expect("slow log");
            if log.len() == SLOW_LOG_CAP {
                log.pop_front();
            }
            log.push_back(tree);
        } else {
            let every = sample_every();
            if every > 0 && tick % every == 0 {
                TLS.with(|t| {
                    let mut t = t.borrow_mut();
                    if t.samples.len() == SAMPLE_RING_CAP {
                        t.samples.pop_front();
                    }
                    t.samples.push_back(tree);
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests touching the global slow log / sampling knobs live in
    // tests/span_tree.rs (their own process); here only pure helpers.

    #[test]
    fn check_rejects_malformed_trees() {
        let root = SpanRecord {
            name: "r",
            parent: None,
            start_ns: 0,
            dur_ns: 100,
            shard: None,
        };
        assert!(SpanTree { spans: vec![] }.check().is_err());
        assert!(SpanTree {
            spans: vec![root.clone()]
        }
        .check()
        .is_ok());
        // Orphaned second root.
        assert!(SpanTree {
            spans: vec![root.clone(), root.clone()]
        }
        .check()
        .is_err());
        // Child escaping its parent's window.
        let bad_child = SpanRecord {
            name: "c",
            parent: Some(0),
            start_ns: 90,
            dur_ns: 20,
            shard: None,
        };
        assert!(SpanTree {
            spans: vec![root.clone(), bad_child]
        }
        .check()
        .is_err());
        // Well-nested child.
        let good_child = SpanRecord {
            name: "c",
            parent: Some(0),
            start_ns: 10,
            dur_ns: 50,
            shard: Some(3),
        };
        let tree = SpanTree {
            spans: vec![root, good_child],
        };
        tree.check().unwrap();
        let rendered = tree.render();
        assert!(rendered.contains("r 100ns"));
        assert!(rendered.contains("  c 50ns [shard 3]"));
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(873), "873ns");
        assert_eq!(format_ns(14_200), "14.2us");
        assert_eq!(format_ns(3_400_000), "3.4ms");
        assert_eq!(format_ns(1_200_000_000), "1.20s");
    }
}
