//! Distributed request tracing: trace contexts minted at admission and
//! a per-thread **flight recorder** of completed trace trees.
//!
//! # Model
//!
//! A [`TraceContext`] is minted once per admitted request (128-bit
//! trace id, 64-bit root span id, sampled flag). The worker that picks
//! the request up opens its span-tree root with
//! [`crate::span::trace_root`], which backdates the root to the
//! admission instant so queue wait is *inside* the trace window. When
//! the root closes, the finished tree becomes a [`TraceRecord`] and is
//! kept iff it was head-sampled at mint time (every
//! [`trace_sample_every`]-th mint) **or** its total duration crossed
//! the slow threshold — tail-based capture, so the traces worth
//! explaining are always retrievable even at a sparse head-sampling
//! stride.
//!
//! Records land in a bounded per-thread ring ([`TRACE_RING_CAP`]):
//! each ring is written only by its owner thread, so the mutex guarding
//! it is effectively uncontended on the hot path and is only ever
//! contended by an explicit [`trace_snapshot`] drain. Snapshots are
//! non-destructive: the explorer, the wire `traces` request and the CLI
//! can all read the same recent window.

use crate::span::SpanTree;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Per-thread flight-recorder ring capacity; oldest records fall off.
pub const TRACE_RING_CAP: usize = 64;

/// Default head-sampling stride: every 64th minted context is sampled.
const DEFAULT_TRACE_SAMPLE_EVERY: u64 = 64;

static TRACE_SAMPLE_EVERY: AtomicU64 = AtomicU64::new(DEFAULT_TRACE_SAMPLE_EVERY);
static MINTED: AtomicU64 = AtomicU64::new(0);

/// Keep every `n`-th minted trace regardless of duration (head
/// sampling); `1` keeps every trace, `0` disables head sampling (slow
/// traces are still tail-captured).
pub fn set_trace_sample_every(n: u64) {
    TRACE_SAMPLE_EVERY.store(n, Ordering::SeqCst);
}

/// The current head-sampling stride.
pub fn trace_sample_every() -> u64 {
    TRACE_SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// The identity a request carries through the fleet: minted once at
/// admission, threaded through the worker pool and across the shard
/// scatter-gather.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id; `0` means "untraced".
    pub trace_id: u128,
    /// Root span id (identifies this hop's root among future remote
    /// children; currently informational).
    pub span_id: u64,
    /// Head-sampling decision, made at mint time so every layer agrees.
    pub sampled: bool,
}

/// SplitMix64: the id generator. Statistically strong enough for
/// collision-free ids at any realistic request rate, and dependency
/// free.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        splitmix64(nanos ^ (std::process::id() as u64) << 32)
    })
}

impl TraceContext {
    /// An untraced context (id 0, never sampled): what disabled
    /// telemetry mints.
    pub fn none() -> TraceContext {
        TraceContext {
            trace_id: 0,
            span_id: 0,
            sampled: false,
        }
    }

    /// Mint a fresh context at admission: unique id plus the
    /// head-sampling decision for this request.
    pub fn mint() -> TraceContext {
        if !crate::enabled() {
            return TraceContext::none();
        }
        let n = MINTED.fetch_add(1, Ordering::Relaxed);
        let lo = splitmix64(process_seed() ^ n);
        let hi = splitmix64(lo ^ 0xa5a5_a5a5_a5a5_a5a5);
        let trace_id = (((hi as u128) << 64) | lo as u128).max(1);
        let every = trace_sample_every();
        TraceContext {
            trace_id,
            span_id: splitmix64(hi),
            sampled: every > 0 && n.is_multiple_of(every),
        }
    }
}

/// The canonical textual form of a trace id: 32 lowercase hex digits.
pub fn format_trace_id(id: u128) -> String {
    format!("{id:032x}")
}

/// Parse a trace id in the [`format_trace_id`] form (leading zeros may
/// be omitted).
pub fn parse_trace_id(s: &str) -> Option<u128> {
    if s.is_empty() || s.len() > 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

/// One completed, kept trace: the identity, why it was kept, and the
/// full span tree (cross-shard segments already stitched in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The minted trace id.
    pub trace_id: u128,
    /// Request label (the wire request kind, e.g. `shortlist`).
    pub label: &'static str,
    /// Kept by head sampling.
    pub sampled: bool,
    /// Kept by tail capture (total ≥ slow threshold).
    pub slow: bool,
    /// Root duration, ns.
    pub total_ns: u64,
    /// The stitched span tree.
    pub tree: SpanTree,
}

#[derive(Default)]
struct Ring {
    records: Mutex<VecDeque<TraceRecord>>,
}

/// Every thread's ring, for snapshotting. Rings outlive their owner
/// thread (bounded by thread count × [`TRACE_RING_CAP`] records).
static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

thread_local! {
    static RING: Arc<Ring> = {
        let ring = Arc::new(Ring::default());
        RINGS.lock().expect("trace rings").push(Arc::clone(&ring));
        ring
    };
}

/// File a kept trace into the calling thread's flight-recorder ring.
pub(crate) fn record(rec: TraceRecord) {
    RING.with(|ring| {
        let mut q = ring.records.lock().expect("trace ring");
        if q.len() == TRACE_RING_CAP {
            q.pop_front();
        }
        q.push_back(rec);
    });
}

fn all_records() -> Vec<TraceRecord> {
    let rings: Vec<Arc<Ring>> = RINGS.lock().expect("trace rings").clone();
    let mut out = Vec::new();
    for ring in rings {
        out.extend(ring.records.lock().expect("trace ring").iter().cloned());
    }
    out
}

/// A non-destructive snapshot of the flight recorder: up to `limit`
/// records across every thread's ring, slowest first.
pub fn trace_snapshot(limit: usize) -> Vec<TraceRecord> {
    let mut records = all_records();
    records.sort_by(|a, b| {
        b.total_ns
            .cmp(&a.total_ns)
            .then(a.trace_id.cmp(&b.trace_id))
    });
    records.truncate(limit);
    records
}

/// Look one trace up by id across every ring.
pub fn find_trace(trace_id: u128) -> Option<TraceRecord> {
    all_records().into_iter().find(|r| r.trace_id == trace_id)
}

/// Clear every flight-recorder ring (tests and benches).
pub fn clear_traces() {
    let rings: Vec<Arc<Ring>> = RINGS.lock().expect("trace rings").clone();
    for ring in rings {
        ring.records.lock().expect("trace ring").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_render_round_trip() {
        let a = TraceContext::mint();
        let b = TraceContext::mint();
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.trace_id, 0);
        let text = format_trace_id(a.trace_id);
        assert_eq!(text.len(), 32);
        assert_eq!(parse_trace_id(&text), Some(a.trace_id));
        assert_eq!(parse_trace_id("dead"), Some(0xdead));
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("not hex"), None);
        assert_eq!(
            parse_trace_id("100000000000000000000000000000000"),
            None,
            "33 hex digits overflow"
        );
    }

    #[test]
    fn ring_keeps_the_most_recent_records_bounded() {
        clear_traces();
        for i in 0..(TRACE_RING_CAP as u64 + 8) {
            record(TraceRecord {
                trace_id: u128::from(i) + 1,
                label: "test",
                sampled: true,
                slow: false,
                total_ns: i,
                tree: SpanTree {
                    spans: vec![crate::span::SpanRecord {
                        name: "r",
                        parent: None,
                        start_ns: 0,
                        dur_ns: i,
                        shard: None,
                    }],
                },
            });
        }
        let snap = trace_snapshot(usize::MAX);
        assert_eq!(snap.len(), TRACE_RING_CAP);
        // Slowest first, and the oldest (smallest total) records evicted.
        assert_eq!(snap[0].total_ns, TRACE_RING_CAP as u64 + 7);
        assert!(snap.iter().all(|r| r.total_ns >= 8));
        let id = snap[3].trace_id;
        assert_eq!(find_trace(id).expect("by id").trace_id, id);
        assert!(find_trace(u128::MAX).is_none());
        clear_traces();
        assert!(trace_snapshot(usize::MAX).is_empty());
    }
}
