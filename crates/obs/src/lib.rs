//! Workspace-wide observability with zero external dependencies.
//!
//! Three pillars, sized for a hot path that must not notice them:
//!
//! * **Metrics** — monotonic [`Counter`]s, signed [`Gauge`]s and
//!   log-bucketed [`Histogram`]s (HDR-style: fixed memory, bounded
//!   relative error, mergeable shards). Recording is a few relaxed
//!   atomic operations; handles are resolved once from the global
//!   [`Registry`] and cached, so the hot path never touches a lock.
//! * **Spans** — scoped guards ([`span`]) that capture nested timing
//!   trees per thread. Completed trees are sampled into a per-thread
//!   ring buffer; any tree whose root exceeds the slow threshold is
//!   pushed to a global **slow-query log** ([`take_slow_queries`]).
//! * **Traces** — a [`TraceContext`] minted at admission
//!   ([`TraceContext::mint`]) rides the request through queues, worker
//!   pools and shard fan-outs; kept trees (head-sampled at 1/N or
//!   tail-captured over the slow threshold) land in a per-thread
//!   flight recorder ([`trace_snapshot`], [`find_trace`]).
//! * **Exposition** — deterministic JSON ([`expo::render_json`]) and
//!   Prometheus-style text ([`expo::render_prometheus`]) of a
//!   [`RegistrySnapshot`], with histogram p50/p90/p99/p999.
//!
//! A process-wide kill switch ([`set_enabled`]) turns every recording
//! path into an early return, and the `off` cargo feature compiles the
//! same paths out entirely — the overhead bench compares the two
//! against the enabled default to bound instrumentation cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod hist;
pub mod metrics;
pub mod registry;
pub mod span;
pub mod trace;

pub use hist::{Histogram, HistogramShard, HistogramSnapshot};
pub use metrics::{Counter, Gauge};
pub use registry::{global, HistDelta, HistSummary, Registry, RegistryDelta, RegistrySnapshot};
pub use span::{
    annotate, capture_from, child_span, current_root_start, graft, sample_every, set_sample_every,
    set_slow_threshold_ns, slow_threshold_ns, span, span_sharded, take_samples, take_slow_queries,
    trace_root, SpanGuard, SpanRecord, SpanTree,
};
pub use trace::{
    clear_traces, find_trace, format_trace_id, parse_trace_id, set_trace_sample_every,
    trace_sample_every, trace_snapshot, TraceContext, TraceRecord,
};

#[cfg(not(feature = "off"))]
static ENABLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Process-wide recording switch. Disabling turns every counter, gauge,
/// histogram and span record into an early return (structural state the
/// callers keep themselves — e.g. per-server snapshots — is unaffected).
pub fn set_enabled(on: bool) {
    #[cfg(not(feature = "off"))]
    ENABLED.store(on, std::sync::atomic::Ordering::SeqCst);
    #[cfg(feature = "off")]
    let _ = on;
}

/// Whether recording is currently on. Always `false` when the crate is
/// built with the `off` feature (the compiled-out baseline).
#[inline]
pub fn enabled() -> bool {
    #[cfg(not(feature = "off"))]
    {
        ENABLED.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(feature = "off")]
    {
        false
    }
}
