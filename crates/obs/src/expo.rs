//! Exposition: deterministic JSON and Prometheus-style text renderings
//! of a [`RegistrySnapshot`].
//!
//! Both renderings are byte-deterministic for a given snapshot: the
//! snapshot is already name-sorted, every number is an integer, and the
//! JSON writer emits compact output (no whitespace) with the same
//! escaping rules as the serving layer's wire codec, so two dumps of
//! equal state compare equal as bytes.

use crate::registry::{HistSummary, RegistrySnapshot};
use std::fmt::Write;

/// The HTTP `Content-Type` for [`render_prometheus`] output, per the
/// Prometheus text exposition format spec.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Append `s` as a JSON string literal (quotes included).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_summary(out: &mut String, h: &HistSummary) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
        h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99, h.p999
    );
}

/// Render the snapshot as one compact JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,p50,p90,p99,p999}}}`.
pub fn render_json(s: &RegistrySnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in s.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, name);
        let _ = write!(out, ":{v}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, name);
        let _ = write!(out, ":{v}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in s.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, name);
        out.push(':');
        push_summary(&mut out, h);
    }
    out.push_str("}}");
    out
}

/// Render a flat JSON object of unsigned-integer fields with the same
/// compact writer the registry exposition uses, preserving the given
/// key order — for stats views that promise a fixed field order.
pub fn render_u64_object(fields: &[(&str, u64)]) -> String {
    let mut out = String::from("{");
    for (i, (name, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, name);
        let _ = write!(out, ":{v}");
    }
    out.push('}');
    out
}

/// Split `serve.q{reason="x"}` into a Prometheus-legal base name
/// (`serve_q`) and the label selector (`{reason="x"}`, possibly empty).
fn prom_name(name: &str) -> (String, &str) {
    let (base, labels) = match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    };
    let base: String = base
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    (base, labels)
}

/// Render the snapshot in Prometheus text exposition style. Dotted
/// metric names become underscored; histograms expose `_count`, `_sum`,
/// `_min`, `_max` and `{quantile="..."}` series.
pub fn render_prometheus(s: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_type_base = String::new();
    let mut type_line = |out: &mut String, base: &str, kind: &str| {
        if base != last_type_base {
            let _ = writeln!(out, "# TYPE {base} {kind}");
            last_type_base = base.to_string();
        }
    };
    for (name, v) in &s.counters {
        let (base, labels) = prom_name(name);
        type_line(&mut out, &base, "counter");
        let _ = writeln!(out, "{base}{labels} {v}");
    }
    for (name, v) in &s.gauges {
        let (base, labels) = prom_name(name);
        type_line(&mut out, &base, "gauge");
        let _ = writeln!(out, "{base}{labels} {v}");
    }
    for (name, h) in &s.histograms {
        let (base, labels) = prom_name(name);
        type_line(&mut out, &base, "summary");
        for (q, v) in [
            ("0.5", h.p50),
            ("0.9", h.p90),
            ("0.99", h.p99),
            ("0.999", h.p999),
        ] {
            // Quantile joins any existing labels (`{shard="0"}` →
            // `{shard="0",quantile="0.5"}`) so per-shard series stay
            // distinct in the flat exposition.
            let sel = match labels.strip_suffix('}') {
                Some(open) => format!("{open},quantile=\"{q}\"}}"),
                None => format!("{{quantile=\"{q}\"}}"),
            };
            let _ = writeln!(out, "{base}{sel} {v}");
        }
        let _ = writeln!(out, "{base}_count{labels} {}", h.count);
        let _ = writeln!(out, "{base}_sum{labels} {}", h.sum);
        let _ = writeln!(out, "{base}_min{labels} {}", h.min);
        let _ = writeln!(out, "{base}_max{labels} {}", h.max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> RegistrySnapshot {
        let r = Registry::new();
        r.counter("serve.completed").add(7);
        r.counter_with("ingest.quarantined", "reason", "bad_frame")
            .add(2);
        r.gauge("serve.staleness_ms").set(41);
        let h = r.histogram("serve.service_ns");
        h.record(1_000);
        h.record(2_000);
        h.record(4_000);
        r.snapshot()
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let s = sample();
        let a = render_json(&s);
        let b = render_json(&s);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"counters\":{"));
        // Label quotes must be escaped inside the JSON key.
        assert!(a.contains("\"ingest.quarantined{reason=\\\"bad_frame\\\"}\":2"));
        // Labeled name sorts before serve.completed (BTreeMap order).
        let qpos = a.find("ingest.quarantined").unwrap();
        let cpos = a.find("serve.completed").unwrap();
        assert!(qpos < cpos);
        assert!(a.contains("\"serve.staleness_ms\":41"));
        assert!(a.contains("\"serve.service_ns\":{\"count\":3,\"sum\":7000"));
        assert!(a.contains("\"p999\":"));
    }

    #[test]
    fn prometheus_rendering_is_legal_ish() {
        let s = sample();
        let p = render_prometheus(&s);
        assert!(p.contains("# TYPE serve_completed counter"));
        assert!(p.contains("serve_completed 7"));
        assert!(p.contains("ingest_quarantined{reason=\"bad_frame\"} 2"));
        assert!(p.contains("# TYPE serve_service_ns summary"));
        assert!(p.contains("serve_service_ns{quantile=\"0.99\"}"));
        assert!(p.contains("serve_service_ns_count 3"));
        assert!(p.contains("serve_service_ns_sum 7000"));
        assert!(p.contains("serve_staleness_ms 41"));
    }

    /// Anything serving the exposition (the HTTP explorer's `/metrics`,
    /// `hftnetview metrics --prom` consumers) advertises this exact
    /// content type; Prometheus scrapers key the text-format version
    /// off it, so it is a frozen part of the public surface.
    #[test]
    fn prometheus_content_type_is_the_versioned_text_format() {
        assert_eq!(PROMETHEUS_CONTENT_TYPE, "text/plain; version=0.0.4");
    }

    /// The serving fleet emits one series per shard worker under a
    /// `shard` label (e.g. `serve.service_ns{shard="3"}`); both
    /// expositions must keep shard series distinct, sorted, and
    /// Prometheus-legal next to their unlabeled fleet-wide siblings.
    #[test]
    fn shard_labeled_series_render_per_shard() {
        let r = Registry::new();
        r.counter("serve.completed").add(9);
        for (k, n) in [(0u32, 4u64), (1, 5)] {
            let shard = k.to_string();
            r.counter_with("serve.completed", "shard", &shard).add(n);
            r.gauge(&crate::registry::labeled(
                "ingest.generation",
                "shard",
                &shard,
            ))
            .set(7 + k as i64);
            r.histogram(&crate::registry::labeled(
                "serve.service_ns",
                "shard",
                &shard,
            ))
            .record(1_000 * (k as u64 + 1));
        }
        let s = r.snapshot();

        let j = render_json(&s);
        assert!(j.contains("\"serve.completed\":9"));
        assert!(j.contains("\"serve.completed{shard=\\\"0\\\"}\":4"));
        assert!(j.contains("\"serve.completed{shard=\\\"1\\\"}\":5"));
        assert!(j.contains("\"ingest.generation{shard=\\\"0\\\"}\":7"));
        assert!(j.contains("\"ingest.generation{shard=\\\"1\\\"}\":8"));
        assert!(j.contains("\"serve.service_ns{shard=\\\"0\\\"}\":{\"count\":1,\"sum\":1000"));
        assert!(j.contains("\"serve.service_ns{shard=\\\"1\\\"}\":{\"count\":1,\"sum\":2000"));
        // Shard series sort after the unlabeled name ('{' > alphanum),
        // so fleet-wide totals lead their per-shard breakdown.
        let total = j.find("\"serve.completed\":").unwrap();
        let shard0 = j.find("serve.completed{shard=\\\"0\\\"}").unwrap();
        let shard1 = j.find("serve.completed{shard=\\\"1\\\"}").unwrap();
        assert!(total < shard0 && shard0 < shard1);

        let p = render_prometheus(&s);
        assert!(p.contains("serve_completed 9"));
        assert!(p.contains("serve_completed{shard=\"0\"} 4"));
        assert!(p.contains("serve_completed{shard=\"1\"} 5"));
        assert!(p.contains("ingest_generation{shard=\"0\"} 7"));
        assert!(p.contains("ingest_generation{shard=\"1\"} 8"));
        // Histogram series keep the shard label, with quantile joined
        // into the selector and summary fields labeled per shard.
        assert!(p.contains("serve_service_ns{shard=\"0\",quantile=\"0.5\"} "));
        assert!(p.contains("serve_service_ns{shard=\"1\",quantile=\"0.5\"} "));
        assert!(p.contains("serve_service_ns_count{shard=\"0\"} 1"));
        assert!(p.contains("serve_service_ns_sum{shard=\"1\"} 2000"));
        // One TYPE line covers the unlabeled series and its shard
        // breakdown; the base name never carries the label selector.
        assert_eq!(p.matches("# TYPE serve_completed counter").count(), 1);
        assert_eq!(p.matches("# TYPE serve_service_ns summary").count(), 1);
        assert!(!p.contains("# TYPE serve_completed{"));
    }

    #[test]
    fn empty_registry_renders_empty_sections() {
        let s = Registry::new().snapshot();
        assert_eq!(
            render_json(&s),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
        assert_eq!(render_prometheus(&s), "");
    }
}
