//! Log-bucketed latency histograms, HDR-style: fixed memory, bounded
//! relative error, lock-free atomic recording, and plain-array shards
//! that merge exactly.
//!
//! # Bucketing
//!
//! Values below 2^[`SUB_BITS`] get an exact unit bucket. Above that,
//! each power-of-two octave is split into 2^[`SUB_BITS`] equal
//! sub-buckets, so the relative width of any bucket is at most
//! `1 / 2^SUB_BITS` (~3.1% with 5 sub-bucket bits). The whole `u64`
//! domain fits in [`BUCKETS`] slots (15 KiB of counters), which is why
//! a histogram can sit in a static registry forever.
//!
//! Percentiles are nearest-rank over bucket counts, reported as the
//! bucket midpoint — within one bucket width of the exact order
//! statistic (property-tested in `tests/prop_hist.rs`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` domain.
pub const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// The bucket index of `v`. Monotone non-decreasing in `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let group = (msb - SUB_BITS + 1) as usize;
        let top = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        group * SUB + top
    }
}

/// The inclusive `(lo, hi)` value range of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB {
        (index as u64, index as u64)
    } else {
        let group = index / SUB;
        let top = (index % SUB) as u64;
        let shift = (group - 1) as u32;
        let lo = (SUB as u64 + top) << shift;
        (lo, lo + ((1u64 << shift) - 1))
    }
}

/// The midpoint of bucket `index` — the value percentiles report.
pub fn bucket_mid(index: usize) -> u64 {
    let (lo, hi) = bucket_bounds(index);
    lo + (hi - lo) / 2
}

/// A concurrent log-bucketed histogram. Recording is two relaxed
/// `fetch_add`s plus a `fetch_min`/`fetch_max` pair; memory is fixed at
/// [`BUCKETS`] counters regardless of how many values are recorded.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::iter::repeat_with(|| AtomicU64::new(0))
                .take(BUCKETS)
                .collect(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. A no-op while recording is disabled
    /// ([`crate::set_enabled`]).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.record_always(v);
    }

    /// Record one value regardless of the kill switch — for callers
    /// whose measurement *is* the deliverable (bench reports), not
    /// telemetry.
    #[inline]
    pub fn record_always(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Fold a shard's counts in (used by per-thread recording: record
    /// into a private [`HistogramShard`], merge once at the end).
    pub fn merge_shard(&self, shard: &HistogramShard) {
        for (i, &c) in shard.buckets.iter().enumerate() {
            if c != 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        if shard.count > 0 {
            self.sum.fetch_add(shard.sum, Ordering::Relaxed);
            self.min.fetch_min(shard.min, Ordering::Relaxed);
            self.max.fetch_max(shard.max, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A single-thread, non-atomic histogram with the same bucketing as
/// [`Histogram`]. Record contention-free, then [`Histogram::merge_shard`]
/// (or [`HistogramShard::merge`] shards together): the merged counts are
/// exactly what single-shard recording of the union would produce.
#[derive(Debug, Clone)]
pub struct HistogramShard {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramShard {
    fn default() -> HistogramShard {
        HistogramShard::new()
    }
}

impl HistogramShard {
    /// An empty shard.
    pub fn new() -> HistogramShard {
        HistogramShard {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value (not gated by the kill switch; shards are
    /// explicit measurements, not ambient telemetry).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        // Wraps like the atomic histogram's fetch_add: `sum` is an
        // aggregate for means, not an exact ledger.
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &HistogramShard) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The shard's counts as a snapshot (same percentile machinery as
    /// the atomic histogram).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.clone(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
        }
    }
}

/// A point-in-time copy of histogram counts, with percentile queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts ([`BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The nearest-rank `q`-quantile (`0.0..=1.0`), reported as the
    /// midpoint of the bucket holding that rank; 0 when empty. Within
    /// one bucket width of the exact order statistic.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen > rank {
                return bucket_mid(i);
            }
        }
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_contain() {
        let mut prev = 0usize;
        let mut v = 0u64;
        while v < 1 << 22 {
            let i = bucket_index(v);
            assert!(i >= prev, "index must not decrease at v={v}");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} outside bucket {i} [{lo},{hi}]");
            prev = i;
            v += 1 + v / 64; // dense at first, exponential later
        }
        // Extremes stay in range.
        assert!(bucket_index(u64::MAX) < BUCKETS);
        let (_, hi) = bucket_bounds(bucket_index(u64::MAX));
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn exact_buckets_below_sub() {
        for v in 0..(1u64 << SUB_BITS) {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v));
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[100u64, 1_000, 50_000, 1 << 30, (1 << 40) + 12345] {
            let mid = bucket_mid(bucket_index(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / SUB as f64, "v={v} mid={mid} err={err}");
        }
    }

    #[test]
    fn snapshot_summarizes() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 1000, 2000] {
            h.record_always(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 3006);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2000);
        assert_eq!(s.percentile(0.0), 1);
        // p50 = rank 2 → value 3 (exact unit bucket).
        assert_eq!(s.percentile(0.5), 3);
        let p100 = s.percentile(1.0);
        let (lo, hi) = bucket_bounds(bucket_index(2000));
        assert!(lo <= p100 && p100 <= hi);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.percentile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn shard_merge_equals_direct() {
        let mut a = HistogramShard::new();
        let mut b = HistogramShard::new();
        let direct = Histogram::new();
        for v in 0..500u64 {
            let v = v * 17 % 4096;
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            direct.record_always(v);
        }
        let h = Histogram::new();
        h.merge_shard(&a);
        h.merge_shard(&b);
        assert_eq!(h.snapshot(), direct.snapshot());
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.snapshot(), direct.snapshot());
    }
}
