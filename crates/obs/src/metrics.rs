//! Scalar metrics: monotonic counters and signed gauges. One relaxed
//! atomic op per record, gated by the process-wide kill switch.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`. A no-op while recording is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, staleness, high-water
/// marks).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value. A no-op while recording is disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Raise the value to `v` if it is higher (high-water marks).
    #[inline]
    pub fn record_max(&self, v: i64) {
        if crate::enabled() {
            self.0.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn gauge_sets_adds_and_high_waters() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
        g.record_max(5);
        assert_eq!(g.value(), 7, "record_max never lowers");
        g.record_max(11);
        assert_eq!(g.value(), 11);
    }
}
