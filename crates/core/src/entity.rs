//! Entity resolution via complementary-link analysis (§2.4 / §6).
//!
//! The paper's limitation: "If a network has multiple entities filing on
//! its behalf, it will appear as two separate networks in our analysis.
//! Future work could potentially overcome this [...] by evaluating which
//! networks have complementary links that together form end-end paths."
//!
//! This module implements that future-work item: merge candidate
//! licensee pairs' networks (stitching on shared tower coordinates, just
//! like single-licensee reconstruction) and flag pairs whose *union*
//! yields end-to-end connectivity — or a materially faster path — that
//! neither member has alone.

use crate::corridor::DataCenter;
use crate::network::{MwLink, Network, Tower};
use crate::route::route;
use hft_geodesy::SnappedCoord;
use hft_netgraph::{Graph, NodeId};
use std::collections::HashMap;

/// Merge two reconstructed networks into one, stitching towers whose snap
/// cells coincide (the same rule single-network reconstruction uses).
/// Licenses and frequencies of coincident links are pooled.
pub fn merge(a: &Network, b: &Network) -> Network {
    let mut graph: Graph<Tower, MwLink> = Graph::new();
    let mut node_of: HashMap<SnappedCoord, NodeId> = HashMap::new();
    let mut edge_of: HashMap<(SnappedCoord, SnappedCoord), hft_netgraph::EdgeId> = HashMap::new();

    for net in [a, b] {
        for (_, tower) in net.graph.nodes() {
            node_of
                .entry(tower.cell)
                .or_insert_with(|| graph.add_node(tower.clone()));
        }
        for (_, u, v, link) in net.graph.edges() {
            let cu = net.graph.node(u).cell;
            let cv = net.graph.node(v).cell;
            if cu == cv {
                continue;
            }
            let key = if cu <= cv { (cu, cv) } else { (cv, cu) };
            match edge_of.get(&key) {
                Some(&e) => {
                    let merged = graph.edge_mut(e);
                    merged
                        .frequencies_ghz
                        .extend(link.frequencies_ghz.iter().copied());
                    merged.licenses.extend(link.licenses.iter().copied());
                    merged
                        .frequencies_ghz
                        .sort_by(|x, y| x.partial_cmp(y).expect("finite"));
                    merged
                        .frequencies_ghz
                        .dedup_by(|x, y| (*x - *y).abs() < 1e-9);
                    merged.licenses.sort_unstable();
                    merged.licenses.dedup();
                }
                None => {
                    let e = graph.add_edge(node_of[&cu], node_of[&cv], link.clone());
                    edge_of.insert(key, e);
                }
            }
        }
    }
    Network {
        licensee: format!("{} + {}", a.licensee, b.licensee),
        as_of: a.as_of.max(b.as_of),
        graph,
    }
}

/// A licensee pair whose merged network out-performs its members.
#[derive(Debug, Clone)]
pub struct MergeCandidate {
    /// First licensee.
    pub a: String,
    /// Second licensee.
    pub b: String,
    /// Latency of the merged network, ms.
    pub joint_latency_ms: f64,
    /// `a`'s standalone latency, if connected at all.
    pub a_alone_ms: Option<f64>,
    /// `b`'s standalone latency, if connected at all.
    pub b_alone_ms: Option<f64>,
    /// Towers the two networks share (the stitching evidence).
    pub shared_towers: usize,
}

impl MergeCandidate {
    /// True when the pair is connected end-to-end only jointly — the
    /// strongest co-ownership signal.
    pub fn jointly_connected_only(&self) -> bool {
        self.a_alone_ms.is_none() && self.b_alone_ms.is_none()
    }

    /// Latency improvement of the merge over the best standalone member,
    /// µs (infinite when neither connects alone — represented as `None`).
    pub fn improvement_us(&self) -> Option<f64> {
        let best = match (self.a_alone_ms, self.b_alone_ms) {
            (Some(x), Some(y)) => x.min(y),
            (Some(x), None) | (None, Some(x)) => x,
            (None, None) => return None,
        };
        Some((best - self.joint_latency_ms) * 1000.0)
    }
}

/// Count towers (snap cells) present in both networks.
pub fn shared_towers(a: &Network, b: &Network) -> usize {
    let cells: std::collections::HashSet<SnappedCoord> =
        a.graph.nodes().map(|(_, t)| t.cell).collect();
    b.graph
        .nodes()
        .filter(|(_, t)| cells.contains(&t.cell))
        .count()
}

/// Scan all licensee pairs for complementary-link evidence between two
/// data centers.
///
/// A pair qualifies when the merged network is connected AND either (a)
/// neither member connects alone, or (b) the merge improves on the best
/// member by more than `min_improvement_us`. Pairs with no shared towers
/// can never stitch and are skipped cheaply.
///
/// Networks may be owned or shared (anything that [`Borrow`]s a
/// [`Network`], e.g. `Arc<Network>` handed out by an analysis session).
///
/// [`Borrow`]: std::borrow::Borrow
pub fn complementary_pairs<N: std::borrow::Borrow<Network>>(
    networks: &[(String, N)],
    from: &DataCenter,
    to: &DataCenter,
    min_improvement_us: f64,
) -> Vec<MergeCandidate> {
    let alone: Vec<Option<f64>> = networks
        .iter()
        .map(|(_, n)| route(n.borrow(), from, to).map(|r| r.latency_ms))
        .collect();
    let mut out = Vec::new();
    for i in 0..networks.len() {
        for j in i + 1..networks.len() {
            let shared = shared_towers(networks[i].1.borrow(), networks[j].1.borrow());
            if shared == 0 {
                continue;
            }
            let merged = merge(networks[i].1.borrow(), networks[j].1.borrow());
            let Some(joint) = route(&merged, from, to) else {
                continue;
            };
            let candidate = MergeCandidate {
                a: networks[i].0.clone(),
                b: networks[j].0.clone(),
                joint_latency_ms: joint.latency_ms,
                a_alone_ms: alone[i],
                b_alone_ms: alone[j],
                shared_towers: shared,
            };
            let qualifies = candidate.jointly_connected_only()
                || candidate
                    .improvement_us()
                    .is_some_and(|imp| imp > min_improvement_us);
            if qualifies {
                out.push(candidate);
            }
        }
    }
    // Strongest evidence first: joint-only, then by improvement.
    out.sort_by(|x, y| {
        y.jointly_connected_only()
            .cmp(&x.jointly_connected_only())
            .then_with(|| {
                y.improvement_us()
                    .unwrap_or(f64::INFINITY)
                    .partial_cmp(&x.improvement_us().unwrap_or(f64::INFINITY))
                    .expect("finite or inf")
            })
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corridor::{CME, EQUINIX_NY4};
    use hft_geodesy::{gc_interpolate, LatLon, SnapGrid};
    use hft_time::Date;

    fn tower(p: LatLon) -> Tower {
        Tower {
            position: p,
            cell: SnapGrid::arc_second().snap(&p),
            ground_elevation_m: 230.0,
            structure_height_m: 110.0,
        }
    }

    /// Chain covering corridor fractions [t0, t1] with ~45 km hops.
    fn half_chain(name: &str, t0: f64, t1: f64) -> Network {
        let a = CME.position();
        let b = EQUINIX_NY4.position();
        let hops = (((t1 - t0) * 1186.0) / 45.0).round() as usize;
        let mut graph = Graph::new();
        let mut prev: Option<NodeId> = None;
        for i in 0..=hops {
            let t = t0 + (t1 - t0) * i as f64 / hops as f64;
            let node = graph.add_node(tower(gc_interpolate(&a, &b, t)));
            if let Some(p) = prev {
                let d = graph
                    .node(p)
                    .position
                    .geodesic_distance_m(&graph.node(node).position);
                graph.add_edge(
                    p,
                    node,
                    MwLink {
                        length_m: d,
                        frequencies_ghz: vec![6.1],
                        licenses: vec![],
                    },
                );
            }
            prev = Some(node);
        }
        Network {
            licensee: name.into(),
            as_of: Date::new(2020, 4, 1).unwrap(),
            graph,
        }
    }

    #[test]
    fn merge_stitches_at_shared_tower() {
        // West half ends exactly where the east half begins.
        let west = half_chain("West", 0.003, 0.5);
        let east = half_chain("East", 0.5, 0.997);
        assert!(route(&west, &CME, &EQUINIX_NY4).is_none());
        assert!(route(&east, &CME, &EQUINIX_NY4).is_none());
        assert_eq!(shared_towers(&west, &east), 1);
        let joint = merge(&west, &east);
        let r = route(&joint, &CME, &EQUINIX_NY4).expect("joint network connects");
        assert!(r.latency_ms < 4.1, "got {}", r.latency_ms);
        assert_eq!(joint.licensee, "West + East");
    }

    #[test]
    fn merge_without_shared_towers_stays_split() {
        // A gap between the halves: no stitch, no route.
        let west = half_chain("West", 0.003, 0.45);
        let east = half_chain("East", 0.55, 0.997);
        assert_eq!(shared_towers(&west, &east), 0);
        let joint = merge(&west, &east);
        assert!(route(&joint, &CME, &EQUINIX_NY4).is_none());
    }

    #[test]
    fn complementary_scan_finds_the_pair() {
        let nets = vec![
            ("West".to_string(), half_chain("West", 0.003, 0.5)),
            ("East".to_string(), half_chain("East", 0.5, 0.997)),
            ("Stub".to_string(), half_chain("Stub", 0.003, 0.2)),
        ];
        let found = complementary_pairs(&nets, &CME, &EQUINIX_NY4, 1.0);
        assert_eq!(found.len(), 1, "exactly the West+East pair");
        assert!(found[0].jointly_connected_only());
        assert_eq!(found[0].shared_towers, 1);
        assert!((found[0].a == "West") ^ (found[0].a == "East") || found[0].b == "East");
    }

    #[test]
    fn merge_pools_duplicate_links() {
        let west = half_chain("A", 0.003, 0.5);
        let same = half_chain("B", 0.003, 0.5); // identical geometry
        let joint = merge(&west, &same);
        assert_eq!(joint.link_count(), west.link_count(), "duplicates pooled");
        assert_eq!(joint.tower_count(), west.tower_count());
    }

    #[test]
    fn improvement_metric() {
        let full = half_chain("Full", 0.003, 0.997);
        let c = MergeCandidate {
            a: "x".into(),
            b: "y".into(),
            joint_latency_ms: 3.97,
            a_alone_ms: Some(3.99),
            b_alone_ms: None,
            shared_towers: 3,
        };
        assert!((c.improvement_us().unwrap() - 20.0).abs() < 1e-9);
        assert!(!c.jointly_connected_only());
        let _ = full;
    }
}
