//! Longitudinal analysis (§4 of the paper): latency and license-count
//! trajectories over time, as plotted in Figs 1 and 2.

use crate::corridor::DataCenter;
use crate::reconstruct::ReconstructOptions;
use crate::session::AnalysisSession;
use hft_time::Date;
use hft_uls::License;

/// One sample point in a network's trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolutionPoint {
    /// Sample date.
    pub date: Date,
    /// End-to-end latency in ms, `None` when the network is not connected
    /// between the data centers at this date (the line simply does not
    /// appear in Fig. 1 for such dates).
    pub latency_ms: Option<f64>,
    /// Active licenses held on this date (the Fig. 2 series).
    pub active_licenses: usize,
    /// Towers in the reconstructed network.
    pub towers: usize,
}

/// A licensee's full trajectory over the sample dates.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Licensee name.
    pub licensee: String,
    /// Sample points, in input date order.
    pub points: Vec<EvolutionPoint>,
}

impl Trajectory {
    /// Dates at which the network was connected end-to-end.
    pub fn connected_dates(&self) -> Vec<Date> {
        self.points
            .iter()
            .filter(|p| p.latency_ms.is_some())
            .map(|p| p.date)
            .collect()
    }

    /// Best (lowest) latency ever achieved, if any.
    pub fn best_latency_ms(&self) -> Option<f64> {
        self.points
            .iter()
            .filter_map(|p| p.latency_ms)
            .min_by(|a, b| a.partial_cmp(b).expect("latencies are finite"))
    }
}

/// Count the licenses of `licensee` active on `date`.
pub fn active_license_count(licenses: &[&License], licensee: &str, date: Date) -> usize {
    licenses
        .iter()
        .filter(|l| l.licensee == licensee && l.active_on(date))
        .count()
}

/// Compute a licensee's trajectory between data centers `a` and `b` over
/// `dates` (typically [`hft_time::paper_sample_dates`]-style samples).
///
/// Backed by a throwaway [`AnalysisSession`], so dates falling in the
/// same lifecycle epoch share one reconstruction. Callers scanning many
/// licensees or date sets should hold a session themselves and use
/// [`AnalysisSession::trajectory`] directly to share the cache further.
pub fn trajectory(
    licenses: &[&License],
    licensee: &str,
    a: &DataCenter,
    b: &DataCenter,
    dates: &[Date],
    options: &ReconstructOptions,
) -> Trajectory {
    AnalysisSession::over(licenses.iter().copied())
        .with_options(*options)
        .trajectory(licensee, a, b, dates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corridor::{CME, EQUINIX_NY4};
    use hft_geodesy::{gc_interpolate, LatLon};
    use hft_uls::{
        CallSign, FrequencyAssignment, LicenseId, MicrowavePath, RadioService, StationClass,
        TowerSite,
    };

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::new(y, m, day).unwrap()
    }

    /// One license per hop of a straight CME→NY4 chain, granted on
    /// `grant`, cancelled on `cancel`.
    fn chain_licenses(grant: Date, cancel: Option<Date>, n: usize) -> Vec<License> {
        let a = CME.position();
        let b = EQUINIX_NY4.position();
        let pos = |i: usize| -> LatLon {
            let t = 0.004 + (i as f64 / (n - 1) as f64) * 0.992;
            gc_interpolate(&a, &b, t)
        };
        (0..n - 1)
            .map(|i| License {
                id: LicenseId(1000 + i as u64),
                call_sign: CallSign(format!("WQ{:05}", 1000 + i)),
                licensee: "Evolver".into(),
                service: RadioService::MG,
                station_class: StationClass::FXO,
                grant_date: grant,
                termination_date: None,
                cancellation_date: cancel,
                paths: vec![MicrowavePath {
                    tx: TowerSite::at(pos(i)),
                    rx: TowerSite::at(pos(i + 1)),
                    frequencies: vec![FrequencyAssignment { center_hz: 6.1e9 }],
                }],
            })
            .collect()
    }

    #[test]
    fn trajectory_tracks_lifecycle() {
        let lics = chain_licenses(d(2015, 6, 1), Some(d(2018, 3, 1)), 25);
        let refs: Vec<&License> = lics.iter().collect();
        let dates = vec![d(2014, 1, 1), d(2016, 1, 1), d(2017, 1, 1), d(2019, 1, 1)];
        let t = trajectory(
            &refs,
            "Evolver",
            &CME,
            &EQUINIX_NY4,
            &dates,
            &Default::default(),
        );
        assert_eq!(t.points.len(), 4);
        // Before grant: nothing.
        assert_eq!(t.points[0].active_licenses, 0);
        assert!(t.points[0].latency_ms.is_none());
        // While active: connected with all 24 licenses.
        assert_eq!(t.points[1].active_licenses, 24);
        assert!(t.points[1].latency_ms.is_some());
        assert_eq!(t.points[1].towers, 25);
        // After cancellation: gone again (the National Tower Company arc).
        assert_eq!(t.points[3].active_licenses, 0);
        assert!(t.points[3].latency_ms.is_none());
        assert_eq!(t.connected_dates(), vec![d(2016, 1, 1), d(2017, 1, 1)]);
    }

    #[test]
    fn best_latency_over_time() {
        let lics = chain_licenses(d(2015, 6, 1), None, 25);
        let refs: Vec<&License> = lics.iter().collect();
        let dates = vec![d(2016, 1, 1), d(2020, 4, 1)];
        let t = trajectory(
            &refs,
            "Evolver",
            &CME,
            &EQUINIX_NY4,
            &dates,
            &Default::default(),
        );
        let best = t.best_latency_ms().unwrap();
        assert!((3.9..4.1).contains(&best), "got {best}");
    }

    #[test]
    fn empty_trajectory() {
        let t = trajectory(
            &[],
            "Ghost",
            &CME,
            &EQUINIX_NY4,
            &[d(2020, 1, 1)],
            &Default::default(),
        );
        assert_eq!(t.points.len(), 1);
        assert!(t.best_latency_ms().is_none());
        assert!(t.connected_dates().is_empty());
    }

    #[test]
    fn active_count_respects_dates() {
        let lics = chain_licenses(d(2015, 6, 1), Some(d(2018, 3, 1)), 5);
        let refs: Vec<&License> = lics.iter().collect();
        assert_eq!(active_license_count(&refs, "Evolver", d(2015, 5, 31)), 0);
        assert_eq!(active_license_count(&refs, "Evolver", d(2015, 6, 1)), 4);
        assert_eq!(active_license_count(&refs, "Evolver", d(2018, 2, 28)), 4);
        assert_eq!(active_license_count(&refs, "Evolver", d(2018, 3, 1)), 0);
        assert_eq!(active_license_count(&refs, "Nobody", d(2016, 1, 1)), 0);
    }
}
