//! The Chicago–New Jersey trading corridor: data-center constants.
//!
//! Coordinates are placed at the real facilities' locations, with
//! longitudes calibrated (to the fourth decimal) so that the CME→NJ
//! geodesic distances equal the values quoted in Table 2 of the paper:
//! 1,186 km to Equinix NY4, 1,174 km to NYSE Mahwah, and 1,176 km to
//! NASDAQ Carteret.

use hft_geodesy::LatLon;

/// A financial data center anchoring one end of a corridor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataCenter {
    /// Short identifier, e.g. `"CME"`.
    pub code: &'static str,
    /// Human-readable description.
    pub name: &'static str,
    latitude: f64,
    longitude: f64,
}

impl DataCenter {
    /// Geographic position.
    pub fn position(&self) -> LatLon {
        LatLon::new(self.latitude, self.longitude).expect("static data-center coordinates valid")
    }
}

/// CME Group data center, Aurora, Illinois — the western end of every
/// corridor path.
pub const CME: DataCenter = DataCenter {
    code: "CME",
    name: "CME Group, Aurora IL",
    latitude: 41.7625,
    longitude: -88.171233,
};

/// Equinix NY4, Secaucus, New Jersey (hosts CBOE's electronic platform).
pub const EQUINIX_NY4: DataCenter = DataCenter {
    code: "NY4",
    name: "Equinix NY4, Secaucus NJ",
    latitude: 40.7930,
    longitude: -74.0576,
};

/// NYSE data center, Mahwah, New Jersey.
pub const NYSE: DataCenter = DataCenter {
    code: "NYSE",
    name: "NYSE, Mahwah NJ",
    latitude: 41.0875,
    longitude: -74.139894,
};

/// NASDAQ data center, Carteret, New Jersey.
pub const NASDAQ: DataCenter = DataCenter {
    code: "NASDAQ",
    name: "NASDAQ, Carteret NJ",
    latitude: 40.5946,
    longitude: -74.225577,
};

/// The three corridor destination data centers, in the paper's Table 2
/// order.
pub const NJ_DATA_CENTERS: [DataCenter; 3] = [EQUINIX_NY4, NYSE, NASDAQ];

#[cfg(test)]
mod tests {
    use super::*;
    use hft_geodesy::{one_way_ms, Medium};

    #[test]
    fn geodesics_match_table_2() {
        let cme = CME.position();
        for (dc, expect_km) in [(EQUINIX_NY4, 1186.0), (NYSE, 1174.0), (NASDAQ, 1176.0)] {
            let km = cme.geodesic_distance_m(&dc.position()) / 1000.0;
            assert!(
                (km - expect_km).abs() < 0.05,
                "{}: {km} vs {expect_km}",
                dc.code
            );
        }
    }

    #[test]
    fn c_latency_bound_matches_section_4() {
        // §4: "the minimum achievable latency of 3.955 ms".
        let d = CME.position().geodesic_distance_m(&EQUINIX_NY4.position());
        let ms = one_way_ms(d, Medium::Air);
        assert!((ms - 3.956).abs() < 0.002, "got {ms}");
    }

    #[test]
    fn nj_data_centers_cluster() {
        // The three NJ sites are within ~60 km of one another.
        for a in NJ_DATA_CENTERS {
            for b in NJ_DATA_CENTERS {
                let d = a.position().geodesic_distance_m(&b.position()) / 1000.0;
                assert!(d < 60.0, "{} - {}: {d} km", a.code, b.code);
            }
        }
    }

    #[test]
    fn codes_are_distinct() {
        assert_ne!(CME.code, EQUINIX_NY4.code);
        assert_ne!(NYSE.code, NASDAQ.code);
    }
}
