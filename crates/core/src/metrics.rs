//! The §5 network-property metrics: alternate path availability, link
//! lengths on low-latency paths, and operating frequencies.

use crate::cdf::Cdf;
use crate::corridor::DataCenter;
use crate::network::Network;
use crate::route::RoutingGraph;
use hft_geodesy::{latency_seconds, Medium};
use hft_netgraph::{dijkstra, EdgeId};
use std::collections::BTreeSet;

/// The latency slack of the §5 metrics: paths within 5% of the c-speed
/// geodesic latency qualify as "low-latency".
pub const LATENCY_SLACK: f64 = 1.05;

/// Alternate path availability (APA) of a network for one DC pair.
///
/// Definition (adapted, like the paper, from Gvozdiev et al.): the
/// fraction of microwave links *on the lowest-latency route* whose
/// individual removal leaves the network with an end-to-end latency no
/// more than 5% above the c-speed latency along the DC-DC geodesic.
///
/// The fiber tails are pinned to the ones the baseline route uses: the
/// short data-center fiber segment is built infrastructure, so an
/// alternate path must rejoin it rather than conjure a fresh 30+ km
/// fiber lateral to some other tower (which would make any multi-spur
/// network trivially redundant via a *different data center's*
/// neighborhood).
///
/// A pure chain has APA 0 (any removal disconnects); a fully parallel
/// ladder approaches 1. Returns `None` when the network has no route at
/// all between the data centers.
pub fn apa(network: &Network, a: &DataCenter, b: &DataCenter) -> Option<f64> {
    apa_with(&RoutingGraph::build(network, a, b), network)
}

/// [`apa`] over a pre-built routing graph, so callers holding a cached
/// graph (e.g. an analysis session) skip the rebuild.
pub fn apa_with(rg: &RoutingGraph, network: &Network) -> Option<f64> {
    let base = rg.route_filtered(network, |_| true)?;
    let bound_s = latency_seconds(rg.geodesic_m, Medium::Air) * LATENCY_SLACK;
    if base.mw_edges.is_empty() {
        return Some(0.0);
    }
    let tails: BTreeSet<EdgeId> = base.fiber_edges.iter().copied().collect();
    let survivable = base
        .mw_edges
        .iter()
        .filter(|&&victim| {
            rg.route_with(network, |re, e| match e.mw_edge {
                Some(mw) => mw != victim,
                None => tails.contains(&re),
            })
            .map(|r| r.latency_ms / 1e3 <= bound_s)
            .unwrap_or(false)
        })
        .count();
    Some(survivable as f64 / base.mw_edges.len() as f64)
}

/// The set of microwave links that lie on at least one low-latency path
/// (latency within [`LATENCY_SLACK`] of the c-geodesic bound) between the
/// data centers.
///
/// Membership is decided with exact forward/backward Dijkstra potentials:
/// link `e = (u, v)` qualifies iff
/// `dist(src, u) + lat(e) + dist(v, dst) ≤ bound` in either orientation.
/// (For the geographic graphs at hand the witness walk is loop-free; a
/// cyclic witness would require towers revisited on a near-geodesic
/// route, which tower economics preclude.)
pub fn low_latency_link_set(network: &Network, a: &DataCenter, b: &DataCenter) -> BTreeSet<EdgeId> {
    let rg = RoutingGraph::build(network, a, b);
    let bound_s = latency_seconds(rg.geodesic_m, Medium::Air) * LATENCY_SLACK;
    // Pin the fiber tails to the baseline route's (see `apa` for why).
    let tails: BTreeSet<EdgeId> = match rg.route_filtered(network, |_| true) {
        Some(base) => base.fiber_edges.iter().copied().collect(),
        None => return BTreeSet::new(),
    };
    let pass = |re: EdgeId| rg.graph.edge(re).mw_edge.is_some() || tails.contains(&re);
    let fwd = dijkstra(&rg.graph, rg.source, |_, e| e.latency_s(), pass);
    let bwd = dijkstra(&rg.graph, rg.target, |_, e| e.latency_s(), pass);
    let mut out = BTreeSet::new();
    for (re, u, v, payload) in rg.graph.edges() {
        let Some(mw) = payload.mw_edge else { continue };
        let w = payload.latency_s();
        let du = fwd.distance(u);
        let dv = bwd.distance(v);
        let du_rev = fwd.distance(v);
        let dv_rev = bwd.distance(u);
        let fits = |x: Option<f64>, y: Option<f64>| match (x, y) {
            (Some(x), Some(y)) => x + w + y <= bound_s * (1.0 + 1e-12),
            _ => false,
        };
        if fits(du, dv) || fits(du_rev, dv_rev) {
            out.insert(mw);
        }
        let _ = re;
    }
    out
}

/// CDF of tower-to-tower link lengths (km) over all links on low-latency
/// paths (the paper's Fig. 4a). `None` when no such paths exist.
pub fn link_length_cdf(network: &Network, a: &DataCenter, b: &DataCenter) -> Option<Cdf> {
    let lens: Vec<f64> = low_latency_link_set(network, a, b)
        .into_iter()
        .map(|e| network.graph.edge(e).length_km())
        .collect();
    Cdf::new(lens)
}

/// CDF of operating frequencies (GHz) on the *shortest* path between the
/// data centers (the paper's Fig. 4b solid lines). Every authorized
/// frequency of every link on the route contributes one sample.
pub fn shortest_path_frequency_cdf(
    network: &Network,
    a: &DataCenter,
    b: &DataCenter,
) -> Option<Cdf> {
    let rg = RoutingGraph::build(network, a, b);
    let r = rg.route_filtered(network, |_| true)?;
    let freqs: Vec<f64> = r
        .mw_edges
        .iter()
        .flat_map(|e| network.graph.edge(*e).frequencies_ghz.iter().copied())
        .collect();
    Cdf::new(freqs)
}

/// CDF of operating frequencies (GHz) on *alternate* low-latency paths:
/// links on some low-latency path but not on the shortest route itself
/// (the paper's "NLN-alternate" series in Fig. 4b). `None` when the
/// network has no redundancy at all within the latency bound.
pub fn alternate_path_frequency_cdf(
    network: &Network,
    a: &DataCenter,
    b: &DataCenter,
) -> Option<Cdf> {
    let rg = RoutingGraph::build(network, a, b);
    let r = rg.route_filtered(network, |_| true)?;
    let on_route: BTreeSet<EdgeId> = r.mw_edges.iter().copied().collect();
    let freqs: Vec<f64> = low_latency_link_set(network, a, b)
        .into_iter()
        .filter(|e| !on_route.contains(e))
        .flat_map(|e| network.graph.edge(e).frequencies_ghz.iter().copied())
        .collect();
    Cdf::new(freqs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corridor::{CME, EQUINIX_NY4};
    use crate::network::{MwLink, Tower};
    use hft_geodesy::{gc_destination, gc_initial_bearing_deg, gc_interpolate, LatLon, SnapGrid};
    use hft_netgraph::{Graph, NodeId};
    use hft_time::Date;

    fn add_tower(graph: &mut Graph<Tower, MwLink>, position: LatLon) -> NodeId {
        graph.add_node(Tower {
            position,
            cell: SnapGrid::arc_second().snap(&position),
            ground_elevation_m: 230.0,
            structure_height_m: 110.0,
        })
    }

    fn link(graph: &mut Graph<Tower, MwLink>, a: NodeId, b: NodeId, ghz: f64) {
        let length_m = graph
            .node(a)
            .position
            .geodesic_distance_m(&graph.node(b).position);
        graph.add_edge(
            a,
            b,
            MwLink {
                length_m,
                frequencies_ghz: vec![ghz],
                licenses: vec![],
            },
        );
    }

    /// Straight chain of `n` towers, frequencies all `ghz`.
    fn chain(n: usize, ghz: f64) -> Network {
        let a = CME.position();
        let b = EQUINIX_NY4.position();
        let mut graph = Graph::new();
        let mut prev: Option<NodeId> = None;
        for i in 0..n {
            let t = 0.004 + (i as f64 / (n - 1) as f64) * 0.992;
            let node = add_tower(&mut graph, gc_interpolate(&a, &b, t));
            if let Some(p) = prev {
                link(&mut graph, p, node, ghz);
            }
            prev = Some(node);
        }
        Network {
            licensee: "chain".into(),
            as_of: Date::new(2020, 4, 1).unwrap(),
            graph,
        }
    }

    /// Ladder: two parallel near-geodesic rails with rungs; rail A at
    /// `ghz_main`, rail B at `ghz_alt`.
    fn ladder(n: usize, ghz_main: f64, ghz_alt: f64) -> Network {
        let a = CME.position();
        let b = EQUINIX_NY4.position();
        let bearing = gc_initial_bearing_deg(&a, &b);
        let mut graph = Graph::new();
        let mut top: Vec<NodeId> = Vec::new();
        let mut bot: Vec<NodeId> = Vec::new();
        for i in 0..n {
            let t = 0.004 + (i as f64 / (n - 1) as f64) * 0.992;
            let on_geo = gc_interpolate(&a, &b, t);
            top.push(add_tower(&mut graph, on_geo));
            // Offset rail ~3 km south of the geodesic (except at the ends,
            // where both rails share the first/last tower positions).
            let off = if i == 0 || i == n - 1 {
                gc_destination(&on_geo, bearing + 90.0, 200.0)
            } else {
                gc_destination(&on_geo, bearing + 90.0, 3_000.0)
            };
            bot.push(add_tower(&mut graph, off));
        }
        for i in 0..n - 1 {
            link(&mut graph, top[i], top[i + 1], ghz_main);
            link(&mut graph, bot[i], bot[i + 1], ghz_alt);
        }
        for i in 0..n {
            link(&mut graph, top[i], bot[i], ghz_alt);
        }
        Network {
            licensee: "ladder".into(),
            as_of: Date::new(2020, 4, 1).unwrap(),
            graph,
        }
    }

    #[test]
    fn chain_has_zero_apa() {
        let net = chain(25, 11.2);
        assert_eq!(apa(&net, &CME, &EQUINIX_NY4), Some(0.0));
    }

    #[test]
    fn ladder_has_high_apa() {
        let net = ladder(25, 11.2, 6.2);
        let v = apa(&net, &CME, &EQUINIX_NY4).unwrap();
        assert!(v > 0.8, "got {v}");
    }

    #[test]
    fn disconnected_network_has_no_apa() {
        let net = Network {
            licensee: "none".into(),
            as_of: Date::new(2020, 4, 1).unwrap(),
            graph: Graph::new(),
        };
        assert_eq!(apa(&net, &CME, &EQUINIX_NY4), None);
    }

    #[test]
    fn low_latency_set_covers_chain_exactly() {
        let net = chain(25, 11.2);
        let set = low_latency_link_set(&net, &CME, &EQUINIX_NY4);
        assert_eq!(
            set.len(),
            net.link_count(),
            "every chain link is on the only path"
        );
    }

    #[test]
    fn low_latency_set_excludes_far_detours() {
        // Chain plus a spur tower far north: spur links exceed the bound.
        let mut net = chain(25, 11.2);
        let spur_pos = LatLon::new(44.5, -80.0).unwrap(); // ~300 km off-route
        let spur = add_tower(&mut net.graph, spur_pos);
        let mid = NodeId::from_index(12);
        link(&mut net.graph, mid, spur, 11.2);
        let set = low_latency_link_set(&net, &CME, &EQUINIX_NY4);
        let spur_edge = net.graph.find_edge(mid, spur).unwrap();
        assert!(!set.contains(&spur_edge));
        assert_eq!(set.len(), 24);
    }

    #[test]
    fn ladder_low_latency_set_includes_both_rails() {
        let net = ladder(25, 11.2, 6.2);
        let set = low_latency_link_set(&net, &CME, &EQUINIX_NY4);
        // 24 top rail + 24 bottom rail links qualify at minimum.
        assert!(set.len() >= 48, "got {}", set.len());
    }

    #[test]
    fn link_length_cdf_median_plausible() {
        let net = chain(25, 11.2);
        let cdf = link_length_cdf(&net, &CME, &EQUINIX_NY4).unwrap();
        // 1186 km / 24 hops ≈ 49 km hops.
        assert!((cdf.median() - 49.0).abs() < 3.0, "median {}", cdf.median());
    }

    #[test]
    fn shortest_path_frequencies_single_band() {
        let net = chain(25, 11.2);
        let cdf = shortest_path_frequency_cdf(&net, &CME, &EQUINIX_NY4).unwrap();
        assert_eq!(cdf.len(), 24);
        assert_eq!(cdf.min(), 11.2);
        assert_eq!(cdf.max(), 11.2);
    }

    #[test]
    fn alternate_path_frequencies_show_other_band() {
        let net = ladder(25, 11.2, 6.2);
        let alt = alternate_path_frequency_cdf(&net, &CME, &EQUINIX_NY4).unwrap();
        // Alternate links carry the 6.2 GHz rail (and rungs).
        assert!(
            alt.fraction_below(7.0) > 0.9,
            "got {}",
            alt.fraction_below(7.0)
        );
    }

    #[test]
    fn chain_has_no_alternate_frequencies() {
        let net = chain(25, 11.2);
        assert!(alternate_path_frequency_cdf(&net, &CME, &EQUINIX_NY4).is_none());
    }
}
