//! Network reconstruction from license records (§2.3 of the paper).
//!
//! "We assume that if a license is active, i.e., it was granted but not
//! terminated/cancelled, and forms part of an end-end path, its MW links
//! are active. [...] We reconstruct entire networks by stitching together
//! their individual links: a tower that is an endpoint for two links
//! forms a node connecting these links."

use crate::network::{MwLink, Network, Tower};
use hft_geodesy::{SnapGrid, SnappedCoord};
use hft_netgraph::{Graph, NodeId};
use hft_time::Date;
use hft_uls::License;
use std::collections::HashMap;

/// Options controlling reconstruction.
#[derive(Debug, Clone, Copy)]
pub struct ReconstructOptions {
    /// Coordinate snap grid identifying towers across filings.
    pub snap: SnapGrid,
    /// Drop links shorter than this (meters): two filings quoting slightly
    /// different coordinates for the *same* tower otherwise materialize as
    /// a phantom micro-link.
    pub min_link_m: f64,
}

impl Default for ReconstructOptions {
    fn default() -> Self {
        ReconstructOptions {
            snap: SnapGrid::arc_second(),
            min_link_m: 500.0,
        }
    }
}

/// Reconstruct `licensee`'s network from the active subset of `licenses`
/// as of `as_of`.
///
/// `licenses` may contain any mix of licensees and services; only records
/// matching `licensee` exactly and active on the date contribute. Links
/// between the same (unordered) tower pair are merged: frequencies are
/// pooled and deduplicated, and every backing license id is recorded.
pub fn reconstruct(
    licenses: &[&License],
    licensee: &str,
    as_of: Date,
    options: &ReconstructOptions,
) -> Network {
    let mut graph: Graph<Tower, MwLink> = Graph::new();
    let mut node_of_cell: HashMap<SnappedCoord, NodeId> = HashMap::new();
    let mut edge_of_pair: HashMap<(SnappedCoord, SnappedCoord), hft_netgraph::EdgeId> =
        HashMap::new();

    for lic in licenses {
        if lic.licensee != licensee || !lic.active_on(as_of) {
            continue;
        }
        for path in &lic.paths {
            let tx_cell = options.snap.snap(&path.tx.position);
            let rx_cell = options.snap.snap(&path.rx.position);
            if tx_cell == rx_cell {
                continue; // same tower after snapping; no link
            }
            if path.length_m() < options.min_link_m {
                continue;
            }
            let tx_node = *node_of_cell.entry(tx_cell).or_insert_with(|| {
                graph.add_node(Tower {
                    position: path.tx.position,
                    cell: tx_cell,
                    ground_elevation_m: path.tx.ground_elevation_m,
                    structure_height_m: path.tx.structure_height_m,
                })
            });
            let rx_node = *node_of_cell.entry(rx_cell).or_insert_with(|| {
                graph.add_node(Tower {
                    position: path.rx.position,
                    cell: rx_cell,
                    ground_elevation_m: path.rx.ground_elevation_m,
                    structure_height_m: path.rx.structure_height_m,
                })
            });
            let key = if tx_cell <= rx_cell {
                (tx_cell, rx_cell)
            } else {
                (rx_cell, tx_cell)
            };
            let freqs = path.frequencies.iter().map(|f| f.ghz());
            match edge_of_pair.get(&key) {
                Some(&edge) => {
                    let link = graph.edge_mut(edge);
                    link.frequencies_ghz.extend(freqs);
                    link.licenses.push(lic.id);
                }
                None => {
                    // Length between the *representative* tower positions,
                    // so both directions of a re-filed link agree.
                    let length_m = graph
                        .node(tx_node)
                        .position
                        .geodesic_distance_m(&graph.node(rx_node).position);
                    let edge = graph.add_edge(
                        tx_node,
                        rx_node,
                        MwLink {
                            length_m,
                            frequencies_ghz: freqs.collect(),
                            licenses: vec![lic.id],
                        },
                    );
                    edge_of_pair.insert(key, edge);
                }
            }
        }
    }

    // Normalize merged payloads.
    for e in graph.edge_ids().collect::<Vec<_>>() {
        let link = graph.edge_mut(e);
        link.frequencies_ghz
            .sort_by(|a, b| a.partial_cmp(b).expect("finite frequency"));
        link.frequencies_ghz.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        link.licenses.sort_unstable();
        link.licenses.dedup();
    }

    Network {
        licensee: licensee.to_string(),
        as_of,
        graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hft_geodesy::LatLon;
    use hft_uls::{
        CallSign, FrequencyAssignment, LicenseId, MicrowavePath, RadioService, StationClass,
        TowerSite,
    };

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::new(y, m, day).unwrap()
    }

    #[allow(clippy::type_complexity)]
    fn lic(
        id: u64,
        licensee: &str,
        grant: Date,
        cancel: Option<Date>,
        hops: &[((f64, f64), (f64, f64), f64)],
    ) -> License {
        License {
            id: LicenseId(id),
            call_sign: CallSign(format!("WQ{id:05}")),
            licensee: licensee.into(),
            service: RadioService::MG,
            station_class: StationClass::FXO,
            grant_date: grant,
            termination_date: None,
            cancellation_date: cancel,
            paths: hops
                .iter()
                .map(|&((la, lo), (lb, lob), ghz)| MicrowavePath {
                    tx: TowerSite::at(LatLon::new(la, lo).unwrap()),
                    rx: TowerSite::at(LatLon::new(lb, lob).unwrap()),
                    frequencies: vec![FrequencyAssignment {
                        center_hz: ghz * 1e9,
                    }],
                })
                .collect(),
        }
    }

    #[test]
    fn stitches_chain_via_shared_towers() {
        let a = (41.76, -88.17);
        let b = (41.70, -87.60);
        let c = (41.65, -87.10);
        let l1 = lic(1, "Net", d(2015, 1, 1), None, &[(a, b, 11.2)]);
        let l2 = lic(2, "Net", d(2015, 1, 1), None, &[(b, c, 11.3)]);
        let net = reconstruct(
            &[&l1, &l2],
            "Net",
            d(2020, 4, 1),
            &ReconstructOptions::default(),
        );
        assert_eq!(net.tower_count(), 3);
        assert_eq!(net.link_count(), 2);
        // Middle tower has degree 2.
        let degrees: Vec<usize> = net.graph.node_ids().map(|n| net.graph.degree(n)).collect();
        assert_eq!(degrees.iter().filter(|&&deg| deg == 2).count(), 1);
    }

    #[test]
    fn near_coincident_coordinates_merge_into_one_tower() {
        let b1 = (41.700000, -87.600000);
        let b2 = (41.700020, -87.600020); // ~0.07 arc-second away
        let l1 = lic(1, "Net", d(2015, 1, 1), None, &[((41.76, -88.17), b1, 6.1)]);
        let l2 = lic(2, "Net", d(2015, 1, 1), None, &[(b2, (41.65, -87.10), 6.2)]);
        let net = reconstruct(
            &[&l1, &l2],
            "Net",
            d(2020, 4, 1),
            &ReconstructOptions::default(),
        );
        assert_eq!(net.tower_count(), 3, "re-surveyed tower must not split");
        assert_eq!(net.link_count(), 2);
    }

    #[test]
    fn inactive_licenses_excluded() {
        let a = (41.76, -88.17);
        let b = (41.70, -87.60);
        let cancelled = lic(1, "Net", d(2013, 1, 1), Some(d(2018, 1, 1)), &[(a, b, 6.1)]);
        let future = lic(2, "Net", d(2021, 1, 1), None, &[(a, b, 6.1)]);
        let net = reconstruct(
            &[&cancelled, &future],
            "Net",
            d(2020, 4, 1),
            &ReconstructOptions::default(),
        );
        assert_eq!(net.link_count(), 0);
        // ...but reconstructing *before* the cancellation sees the link.
        let earlier = reconstruct(
            &[&cancelled, &future],
            "Net",
            d(2016, 6, 1),
            &ReconstructOptions::default(),
        );
        assert_eq!(earlier.link_count(), 1);
    }

    #[test]
    fn other_licensees_ignored() {
        let l1 = lic(
            1,
            "Mine",
            d(2015, 1, 1),
            None,
            &[((41.76, -88.17), (41.70, -87.60), 6.1)],
        );
        let l2 = lic(
            2,
            "Theirs",
            d(2015, 1, 1),
            None,
            &[((41.60, -87.00), (41.55, -86.50), 6.1)],
        );
        let net = reconstruct(
            &[&l1, &l2],
            "Mine",
            d(2020, 4, 1),
            &ReconstructOptions::default(),
        );
        assert_eq!(net.link_count(), 1);
        assert_eq!(net.licensee, "Mine");
    }

    #[test]
    fn duplicate_filings_merge_frequencies_and_licenses() {
        let a = (41.76, -88.17);
        let b = (41.70, -87.60);
        let east = lic(1, "Net", d(2015, 1, 1), None, &[(a, b, 11.245)]);
        let west = lic(2, "Net", d(2015, 1, 1), None, &[(b, a, 11.485)]); // reverse direction
        let net = reconstruct(
            &[&east, &west],
            "Net",
            d(2020, 4, 1),
            &ReconstructOptions::default(),
        );
        assert_eq!(net.link_count(), 1, "both directions are one physical link");
        let (_, _, _, link) = net.graph.edges().next().unwrap();
        assert_eq!(link.frequencies_ghz, vec![11.245, 11.485]);
        assert_eq!(link.licenses, vec![LicenseId(1), LicenseId(2)]);
    }

    #[test]
    fn phantom_micro_links_dropped() {
        // Two coordinates ~60 m apart: same physical tower quoted twice,
        // outside the snap cell but inside min_link_m.
        let a = (41.700000, -87.600000);
        let a2 = (41.700550, -87.600000);
        let l = lic(1, "Net", d(2015, 1, 1), None, &[(a, a2, 6.1)]);
        let net = reconstruct(&[&l], "Net", d(2020, 4, 1), &ReconstructOptions::default());
        assert_eq!(net.link_count(), 0);
    }

    #[test]
    fn multi_path_license_contributes_all_paths() {
        let a = (41.76, -88.17);
        let b = (41.70, -87.60);
        let c = (41.65, -87.10);
        let l = lic(1, "Net", d(2015, 1, 1), None, &[(a, b, 6.1), (b, c, 6.2)]);
        let net = reconstruct(&[&l], "Net", d(2020, 4, 1), &ReconstructOptions::default());
        assert_eq!(net.link_count(), 2);
        assert_eq!(net.license_count(), 1);
    }

    #[test]
    fn empty_input_empty_network() {
        let net = reconstruct(&[], "Net", d(2020, 4, 1), &ReconstructOptions::default());
        assert_eq!(net.tower_count(), 0);
        assert_eq!(net.link_count(), 0);
    }
}
