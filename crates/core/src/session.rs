//! The shared snapshot engine: one [`AnalysisSession`] owning the license
//! corpus view, epoch-keyed memoization of every derived artifact, and
//! scoped-thread fan-out.
//!
//! # Epochs
//!
//! A licensee's reconstructed network is a pure function of *which of its
//! licenses are active* on the as-of date. Activity of a license is
//! decided entirely by the predicates `event ≤ date` over its three
//! lifecycle dates (grant, cancellation, termination — see
//! [`License::status_on`]). Take the sorted, deduplicated union `E` of a
//! licensee's lifecycle dates: between two consecutive elements of `E`
//! every such predicate is constant, so reconstruction is provably
//! constant there too. The index of a date within `E`
//! (`partition_point(|e| *e <= date)`) is its **epoch**, and
//! `(licensee, epoch)` — not `(licensee, date)` — is the true identity of
//! a snapshot. The paper's nine-date evolution scan (§4) collapses to the
//! distinct epochs each licensee actually crossed.
//!
//! # Caching
//!
//! Networks are memoized on `(licensee, epoch, options)`; routing graphs,
//! routes and APA on `(licensee, epoch, options, dc-pair)`. All caches
//! sit behind mutexes and counters are atomic, so a session can be shared
//! across the scoped threads of [`AnalysisSession::par_map`].
//!
//! # As-of dates
//!
//! A cached [`Network`] carries the *epoch-representative* as-of date
//! (the event opening its epoch; [`Date::MIN`] for epoch 0), so cache
//! contents never depend on request order. Consumers that print the
//! as-of date (YAML/GeoJSON export) must use
//! [`AnalysisSession::network_at`], which restamps a clone with the exact
//! requested date.

use crate::corridor::DataCenter;
use crate::evolution::{EvolutionPoint, Trajectory};
use crate::network::Network;
use crate::reconstruct::{reconstruct, ReconstructOptions};
use crate::route::{Route, RoutingGraph};
use hft_geodesy::{LatLon, SnapGrid};
use hft_time::Date;
use hft_uls::scrape::{run_pipeline, FunnelReport, ScrapeConfig};
use hft_uls::{License, UlsDatabase, UlsPortal};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Licenses grouped by licensee, with each licensee's sorted lifecycle
/// event dates — the epoch table.
///
/// The index owns its keys and stores licenses as *positions into the
/// session's corpus* rather than borrowed references, so it has no
/// lifetime: a session over an `Arc<UlsDatabase>` (see
/// [`AnalysisSession::shared`]) carries its corpus and this index
/// together without self-reference.
#[derive(Debug, Default)]
pub struct LicenseIndex {
    by_licensee: BTreeMap<String, LicenseeEntry>,
}

#[derive(Debug, Default)]
struct LicenseeEntry {
    /// Positions into the session corpus, in corpus order.
    members: Vec<u32>,
    /// Sorted, deduplicated grant/cancellation/termination dates.
    events: Vec<Date>,
}

impl LicenseIndex {
    /// Group `licenses` by licensee and derive each epoch table. The
    /// iteration order defines the corpus positions recorded in
    /// [`LicenseIndex::members_of`].
    pub fn new<'a>(licenses: impl IntoIterator<Item = &'a License>) -> LicenseIndex {
        let mut by_licensee: BTreeMap<String, LicenseeEntry> = BTreeMap::new();
        for (pos, lic) in licenses.into_iter().enumerate() {
            let entry = match by_licensee.get_mut(lic.licensee.as_str()) {
                Some(e) => e,
                None => by_licensee.entry(lic.licensee.clone()).or_default(),
            };
            entry.members.push(pos as u32);
            entry.events.push(lic.grant_date);
            entry.events.extend(lic.cancellation_date);
            entry.events.extend(lic.termination_date);
        }
        for entry in by_licensee.values_mut() {
            entry.events.sort_unstable();
            entry.events.dedup();
        }
        LicenseIndex { by_licensee }
    }

    /// All licensee names, sorted.
    pub fn licensees(&self) -> impl Iterator<Item = &str> + '_ {
        self.by_licensee.keys().map(String::as_str)
    }

    /// Corpus positions of the licenses filed by `licensee` (empty for
    /// unknown names), in corpus order.
    pub fn members_of(&self, licensee: &str) -> &[u32] {
        self.by_licensee
            .get(licensee)
            .map(|e| e.members.as_slice())
            .unwrap_or(&[])
    }

    /// The sorted lifecycle event dates of `licensee`.
    pub fn events_of(&self, licensee: &str) -> &[Date] {
        self.by_licensee
            .get(licensee)
            .map(|e| e.events.as_slice())
            .unwrap_or(&[])
    }

    /// The epoch of `date` for `licensee`: the number of lifecycle events
    /// at or before `date`. Two dates with equal epochs reconstruct to
    /// identical networks (see the module docs for the argument).
    pub fn epoch_of(&self, licensee: &str, date: Date) -> usize {
        self.events_of(licensee).partition_point(|e| *e <= date)
    }

    /// Number of distinct epochs `licensee` ever has (events + 1).
    pub fn epoch_count(&self, licensee: &str) -> usize {
        self.events_of(licensee).len() + 1
    }

    /// The representative (first) date of `licensee`'s epoch `k`:
    /// the event opening the epoch, or [`Date::MIN`] for epoch 0.
    pub fn epoch_start(&self, licensee: &str, epoch: usize) -> Date {
        if epoch == 0 {
            Date::MIN
        } else {
            self.events_of(licensee)[epoch - 1]
        }
    }
}

/// The corpus a session analyzes: a borrowed database, a shared
/// (`Arc`-owned) database, or a bare license slice. Positions recorded in
/// the [`LicenseIndex`] resolve through this.
enum Corpus<'a> {
    /// Borrowed portal-backed corpus ([`AnalysisSession::new`]).
    Borrowed(&'a UlsDatabase),
    /// Shared portal-backed corpus ([`AnalysisSession::shared`]); keeps
    /// its generation alive for as long as the session does, which is
    /// what lets in-flight queries finish on the snapshot they started
    /// on while the ingest applier publishes newer ones.
    Shared(Arc<UlsDatabase>),
    /// Bare license list, no portal ([`AnalysisSession::over`]).
    Slice(Vec<&'a License>),
}

impl Corpus<'_> {
    fn db(&self) -> Option<&UlsDatabase> {
        match self {
            Corpus::Borrowed(db) => Some(db),
            Corpus::Shared(db) => Some(db),
            Corpus::Slice(_) => None,
        }
    }

    fn license(&self, pos: u32) -> &License {
        match self {
            Corpus::Borrowed(db) => &db.licenses()[pos as usize],
            Corpus::Shared(db) => &db.licenses()[pos as usize],
            Corpus::Slice(v) => v[pos as usize],
        }
    }
}

/// Hashable identity of a [`ReconstructOptions`] (part of every cache
/// key, so sessions with different options never alias).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptionsKey {
    snap: SnapGrid,
    min_link_bits: u64,
}

impl From<&ReconstructOptions> for OptionsKey {
    fn from(o: &ReconstructOptions) -> OptionsKey {
        OptionsKey {
            snap: o.snap,
            min_link_bits: o.min_link_m.to_bits(),
        }
    }
}

/// Atomic hit/miss counters of an [`AnalysisSession`].
///
/// Dual-write: each event bumps a per-session atomic (the
/// [`StatsSnapshot`] view existing consumers read) *and* the matching
/// `session.*` metric in the global [`hft_obs`] registry, where every
/// session in the process aggregates. Registry handles are resolved
/// once at construction, so the per-event cost is two relaxed adds.
#[derive(Debug)]
pub struct SessionStats {
    network_hits: AtomicU64,
    reconstructions: AtomicU64,
    route_hits: AtomicU64,
    route_misses: AtomicU64,
    apa_hits: AtomicU64,
    apa_misses: AtomicU64,
    graph_hits: AtomicU64,
    graph_misses: AtomicU64,
    reg: SessionRegistry,
}

/// Cached global-registry handles for the `session.*` metric family.
#[derive(Debug)]
struct SessionRegistry {
    network_hits: Arc<hft_obs::Counter>,
    reconstructions: Arc<hft_obs::Counter>,
    route_hits: Arc<hft_obs::Counter>,
    route_misses: Arc<hft_obs::Counter>,
    apa_hits: Arc<hft_obs::Counter>,
    apa_misses: Arc<hft_obs::Counter>,
    graph_hits: Arc<hft_obs::Counter>,
    graph_misses: Arc<hft_obs::Counter>,
    reconstruct_ns: Arc<hft_obs::Histogram>,
}

impl Default for SessionStats {
    fn default() -> SessionStats {
        let r = hft_obs::global();
        SessionStats {
            network_hits: AtomicU64::new(0),
            reconstructions: AtomicU64::new(0),
            route_hits: AtomicU64::new(0),
            route_misses: AtomicU64::new(0),
            apa_hits: AtomicU64::new(0),
            apa_misses: AtomicU64::new(0),
            graph_hits: AtomicU64::new(0),
            graph_misses: AtomicU64::new(0),
            reg: SessionRegistry {
                network_hits: r.counter("session.network_hits"),
                reconstructions: r.counter("session.reconstructions"),
                route_hits: r.counter("session.route_hits"),
                route_misses: r.counter("session.route_misses"),
                apa_hits: r.counter("session.apa_hits"),
                apa_misses: r.counter("session.apa_misses"),
                graph_hits: r.counter("session.graph_hits"),
                graph_misses: r.counter("session.graph_misses"),
                reconstruct_ns: r.histogram("session.reconstruct_ns"),
            },
        }
    }
}

/// A point-in-time copy of [`SessionStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Network requests answered from the epoch cache.
    pub network_hits: u64,
    /// Network requests that ran a full reconstruction (cache misses).
    pub reconstructions: u64,
    /// Route requests answered from cache.
    pub route_hits: u64,
    /// Route requests computed fresh.
    pub route_misses: u64,
    /// APA requests answered from cache.
    pub apa_hits: u64,
    /// APA requests computed fresh.
    pub apa_misses: u64,
    /// Routing-graph requests answered from cache.
    pub graph_hits: u64,
    /// Routing-graph requests built fresh.
    pub graph_misses: u64,
}

impl StatsSnapshot {
    /// Reconstructions a naive per-date scan would have run but the epoch
    /// cache absorbed.
    pub fn reconstructions_avoided(&self) -> u64 {
        self.network_hits
    }

    /// The counters as a single-line JSON object — the machine-readable
    /// form served by the query service's `stats` request and printed by
    /// the CLI's `--stats` flag. Rendered by the same deterministic
    /// compact writer the metrics exposition uses; key order is fixed
    /// (field declaration order) so the output is byte-deterministic.
    pub fn to_json(&self) -> String {
        hft_obs::expo::render_u64_object(&[
            ("network_hits", self.network_hits),
            ("reconstructions", self.reconstructions),
            ("route_hits", self.route_hits),
            ("route_misses", self.route_misses),
            ("apa_hits", self.apa_hits),
            ("apa_misses", self.apa_misses),
            ("graph_hits", self.graph_hits),
            ("graph_misses", self.graph_misses),
        ])
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "networks {} built / {} cached; graphs {} built / {} cached; \
             routes {} computed / {} cached; apa {} computed / {} cached",
            self.reconstructions,
            self.network_hits,
            self.graph_misses,
            self.graph_hits,
            self.route_misses,
            self.route_hits,
            self.apa_misses,
            self.apa_hits,
        )
    }
}

impl SessionStats {
    fn network_hit(&self) {
        self.network_hits.fetch_add(1, Ordering::Relaxed);
        self.reg.network_hits.incr();
    }

    /// Count a reconstruction and record its latency.
    fn reconstruction(&self, ns: u64) {
        self.reconstructions.fetch_add(1, Ordering::Relaxed);
        self.reg.reconstructions.incr();
        self.reg.reconstruct_ns.record(ns);
    }

    fn route_hit(&self) {
        self.route_hits.fetch_add(1, Ordering::Relaxed);
        self.reg.route_hits.incr();
    }

    fn route_miss(&self) {
        self.route_misses.fetch_add(1, Ordering::Relaxed);
        self.reg.route_misses.incr();
    }

    fn apa_hit(&self) {
        self.apa_hits.fetch_add(1, Ordering::Relaxed);
        self.reg.apa_hits.incr();
    }

    fn apa_miss(&self) {
        self.apa_misses.fetch_add(1, Ordering::Relaxed);
        self.reg.apa_misses.incr();
    }

    fn graph_hit(&self) {
        self.graph_hits.fetch_add(1, Ordering::Relaxed);
        self.reg.graph_hits.incr();
    }

    fn graph_miss(&self) {
        self.graph_misses.fetch_add(1, Ordering::Relaxed);
        self.reg.graph_misses.incr();
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            network_hits: self.network_hits.load(Ordering::Relaxed),
            reconstructions: self.reconstructions.load(Ordering::Relaxed),
            route_hits: self.route_hits.load(Ordering::Relaxed),
            route_misses: self.route_misses.load(Ordering::Relaxed),
            apa_hits: self.apa_hits.load(Ordering::Relaxed),
            apa_misses: self.apa_misses.load(Ordering::Relaxed),
            graph_hits: self.graph_hits.load(Ordering::Relaxed),
            graph_misses: self.graph_misses.load(Ordering::Relaxed),
        }
    }
}

/// Result of the cached §2.2 scrape pipeline.
#[derive(Debug, Clone)]
pub struct ScrapeOutcome {
    /// Shortlisted licensee names, sorted.
    pub shortlist: Vec<String>,
    /// The funnel counters.
    pub report: FunnelReport,
}

type NetKey = (String, usize, OptionsKey);
type PairKey = (String, usize, OptionsKey, &'static str, &'static str);
type ScrapeKey = (u64, u64, u64, usize);

/// The shared snapshot engine: owns the license-corpus view and serves
/// every derived artifact — networks, routing graphs, routes, APA, the
/// scrape shortlist — from epoch-keyed caches. Shareable across scoped
/// threads; see [`AnalysisSession::par_map`].
pub struct AnalysisSession<'a> {
    index: LicenseIndex,
    corpus: Corpus<'a>,
    options: ReconstructOptions,
    networks: Mutex<HashMap<NetKey, Arc<Network>>>,
    graphs: Mutex<HashMap<PairKey, Arc<RoutingGraph>>>,
    routes: Mutex<HashMap<PairKey, Option<Arc<Route>>>>,
    apas: Mutex<HashMap<PairKey, Option<f64>>>,
    scrapes: Mutex<HashMap<ScrapeKey, Arc<ScrapeOutcome>>>,
    stats: SessionStats,
}

impl<'a> AnalysisSession<'a> {
    fn from_corpus(corpus: Corpus<'a>) -> AnalysisSession<'a> {
        let index = match &corpus {
            Corpus::Borrowed(db) => LicenseIndex::new(db.licenses()),
            Corpus::Shared(db) => LicenseIndex::new(db.licenses()),
            Corpus::Slice(v) => LicenseIndex::new(v.iter().copied()),
        };
        AnalysisSession {
            index,
            corpus,
            options: ReconstructOptions::default(),
            networks: Mutex::new(HashMap::new()),
            graphs: Mutex::new(HashMap::new()),
            routes: Mutex::new(HashMap::new()),
            apas: Mutex::new(HashMap::new()),
            scrapes: Mutex::new(HashMap::new()),
            stats: SessionStats::default(),
        }
    }

    /// Session over a full ULS database (portal-backed operations like
    /// [`AnalysisSession::scrape`] are available).
    pub fn new(db: &'a UlsDatabase) -> AnalysisSession<'a> {
        AnalysisSession::from_corpus(Corpus::Borrowed(db))
    }

    /// Session over a shared, `Arc`-owned database — the form the live
    /// query service uses: each published corpus generation gets a
    /// `'static` session that co-owns its snapshot, so queries started on
    /// an older generation keep a consistent corpus (and caches) until
    /// the last of them finishes.
    pub fn shared(db: Arc<UlsDatabase>) -> AnalysisSession<'static> {
        AnalysisSession::from_corpus(Corpus::Shared(db))
    }

    /// Session over a bare license slice (no portal; `scrape` returns
    /// `None`). Useful for tests and for [`crate::evolution::trajectory`].
    pub fn over(licenses: impl IntoIterator<Item = &'a License>) -> AnalysisSession<'a> {
        AnalysisSession::from_corpus(Corpus::Slice(licenses.into_iter().collect()))
    }

    /// Replace the reconstruction options (builder style).
    pub fn with_options(mut self, options: ReconstructOptions) -> AnalysisSession<'a> {
        self.options = options;
        self
    }

    /// The session's reconstruction options.
    pub fn options(&self) -> &ReconstructOptions {
        &self.options
    }

    /// The underlying database, when the session was built from one.
    pub fn db(&self) -> Option<&UlsDatabase> {
        self.corpus.db()
    }

    /// The license/epoch index.
    pub fn index(&self) -> &LicenseIndex {
        &self.index
    }

    /// Cache counters so far.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The epoch of `date` for `licensee` under this session's corpus.
    pub fn epoch(&self, licensee: &str, date: Date) -> usize {
        self.index.epoch_of(licensee, date)
    }

    /// The licenses filed by `licensee`, resolved through the corpus.
    fn licenses_of(&self, licensee: &str) -> Vec<&License> {
        self.index
            .members_of(licensee)
            .iter()
            .map(|&p| self.corpus.license(p))
            .collect()
    }

    /// Licenses of `licensee` active on `date`.
    pub fn active_count(&self, licensee: &str, date: Date) -> usize {
        self.index
            .members_of(licensee)
            .iter()
            .filter(|&&p| self.corpus.license(p).active_on(date))
            .count()
    }

    fn net_key(&self, licensee: &str, epoch: usize) -> NetKey {
        (licensee.to_string(), epoch, OptionsKey::from(&self.options))
    }

    fn pair_key(&self, licensee: &str, epoch: usize, a: &DataCenter, b: &DataCenter) -> PairKey {
        (
            licensee.to_string(),
            epoch,
            OptionsKey::from(&self.options),
            a.code,
            b.code,
        )
    }

    /// The reconstructed network of `licensee` as of `date`, from cache
    /// when the epoch was seen before.
    ///
    /// The returned network's `as_of` is the epoch-representative date,
    /// NOT `date` — use [`AnalysisSession::network_at`] where the printed
    /// as-of matters.
    pub fn network(&self, licensee: &str, date: Date) -> Arc<Network> {
        let epoch = self.epoch(licensee, date);
        let key = self.net_key(licensee, epoch);
        if let Some(hit) = self.networks.lock().expect("network cache").get(&key) {
            self.stats.network_hit();
            return Arc::clone(hit);
        }
        // Reconstruct outside the lock: epochs are deterministic, so a
        // racing duplicate insert is identical and harmless.
        let _span = hft_obs::span("session.network");
        let started = std::time::Instant::now();
        let as_of = self.index.epoch_start(licensee, epoch);
        let net = Arc::new(reconstruct(
            &self.licenses_of(licensee),
            licensee,
            as_of,
            &self.options,
        ));
        self.stats
            .reconstruction(started.elapsed().as_nanos() as u64);
        self.networks
            .lock()
            .expect("network cache")
            .entry(key)
            .or_insert(net.clone());
        net
    }

    /// The network of `licensee` restamped with the exact `date` — for
    /// consumers that render the as-of date (YAML, GeoJSON).
    pub fn network_at(&self, licensee: &str, date: Date) -> Network {
        let mut net = (*self.network(licensee, date)).clone();
        net.as_of = date;
        net
    }

    /// The cached routing graph of `licensee`'s network between `a` and
    /// `b` as of `date`.
    pub fn routing_graph(
        &self,
        licensee: &str,
        date: Date,
        a: &DataCenter,
        b: &DataCenter,
    ) -> Arc<RoutingGraph> {
        let epoch = self.epoch(licensee, date);
        let key = self.pair_key(licensee, epoch, a, b);
        if let Some(hit) = self.graphs.lock().expect("graph cache").get(&key) {
            self.stats.graph_hit();
            return Arc::clone(hit);
        }
        self.stats.graph_miss();
        let _span = hft_obs::span("session.graph");
        let net = self.network(licensee, date);
        let rg = Arc::new(RoutingGraph::build(&net, a, b));
        self.graphs
            .lock()
            .expect("graph cache")
            .entry(key)
            .or_insert(rg.clone());
        rg
    }

    /// The lowest-latency route of `licensee` between `a` and `b` as of
    /// `date` (`None` when not connected), from cache per epoch.
    pub fn route(
        &self,
        licensee: &str,
        date: Date,
        a: &DataCenter,
        b: &DataCenter,
    ) -> Option<Arc<Route>> {
        let epoch = self.epoch(licensee, date);
        let key = self.pair_key(licensee, epoch, a, b);
        if let Some(hit) = self.routes.lock().expect("route cache").get(&key) {
            self.stats.route_hit();
            return hit.clone();
        }
        self.stats.route_miss();
        let _span = hft_obs::span("session.route");
        let net = self.network(licensee, date);
        let rg = self.routing_graph(licensee, date, a, b);
        let route = rg.route_filtered(&net, |_| true).map(Arc::new);
        self.routes
            .lock()
            .expect("route cache")
            .entry(key)
            .or_insert(route.clone());
        route
    }

    /// Latency (ms) of [`AnalysisSession::route`].
    pub fn latency_ms(
        &self,
        licensee: &str,
        date: Date,
        a: &DataCenter,
        b: &DataCenter,
    ) -> Option<f64> {
        self.route(licensee, date, a, b).map(|r| r.latency_ms)
    }

    /// Alternate path availability of `licensee` between `a` and `b` as
    /// of `date`, cached per epoch (see [`crate::metrics::apa`]).
    pub fn apa(&self, licensee: &str, date: Date, a: &DataCenter, b: &DataCenter) -> Option<f64> {
        let epoch = self.epoch(licensee, date);
        let key = self.pair_key(licensee, epoch, a, b);
        if let Some(hit) = self.apas.lock().expect("apa cache").get(&key) {
            self.stats.apa_hit();
            return *hit;
        }
        self.stats.apa_miss();
        let _span = hft_obs::span("session.apa");
        let net = self.network(licensee, date);
        let rg = self.routing_graph(licensee, date, a, b);
        let apa = crate::metrics::apa_with(&rg, &net);
        self.apas
            .lock()
            .expect("apa cache")
            .entry(key)
            .or_insert(apa);
        apa
    }

    /// Run (or replay) the §2.2 scrape pipeline against the session's
    /// database. `None` when the session has no portal
    /// ([`AnalysisSession::over`]).
    pub fn scrape(&self, reference: &LatLon, config: &ScrapeConfig) -> Option<Arc<ScrapeOutcome>> {
        let db = self.corpus.db()?;
        let _span = hft_obs::span("session.scrape");
        let key: ScrapeKey = (
            reference.lat_deg().to_bits(),
            reference.lon_deg().to_bits(),
            config.radius_km.to_bits(),
            config.min_filings,
        );
        if let Some(hit) = self.scrapes.lock().expect("scrape cache").get(&key) {
            return Some(Arc::clone(hit));
        }
        let (_, report) = run_pipeline(db, reference, config);
        let outcome = Arc::new(ScrapeOutcome {
            shortlist: report.shortlist.clone(),
            report,
        });
        self.scrapes
            .lock()
            .expect("scrape cache")
            .entry(key)
            .or_insert(outcome.clone());
        Some(outcome)
    }

    /// The portal's indexed geographic search for many probe centers at
    /// once, fanned through [`AnalysisSession::par_map`]. Each probe
    /// walks only the candidate cells of the database's site grid;
    /// results are in probe order, each byte-identical to calling
    /// [`hft_uls::UlsPortal::geographic_search`] directly. `None` when
    /// the session has no portal ([`AnalysisSession::over`]).
    pub fn par_geographic_search(
        &self,
        centers: &[LatLon],
        radius_km: f64,
    ) -> Option<Vec<Vec<&License>>> {
        let db = self.corpus.db()?;
        Some(self.par_map(centers.to_vec(), move |c| {
            db.geographic_search(&c, radius_km)
        }))
    }

    /// A licensee's §4 trajectory over `dates`, deduplicating per-date
    /// reconstruction through the epoch cache: a licensee spanning `k`
    /// distinct epochs across `n` dates reconstructs `k ≤ n` times.
    pub fn trajectory(
        &self,
        licensee: &str,
        a: &DataCenter,
        b: &DataCenter,
        dates: &[Date],
    ) -> Trajectory {
        let points = dates
            .iter()
            .map(|&date| {
                let latency_ms = self.latency_ms(licensee, date, a, b);
                let towers = self.network(licensee, date).tower_count();
                EvolutionPoint {
                    date,
                    latency_ms,
                    active_licenses: self.active_count(licensee, date),
                    towers,
                }
            })
            .collect();
        Trajectory {
            licensee: licensee.to_string(),
            points,
        }
    }

    /// Order-preserving parallel map over `items` using scoped threads
    /// (`std::thread::scope` — no extra dependencies). The closure runs
    /// against this shared session, so cache hits propagate across
    /// workers. Worker count is `available_parallelism`, capped at the
    /// item count.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        let chunk = n.div_ceil(workers);
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let mut batches: Vec<Vec<T>> = Vec::with_capacity(workers);
        let mut it = items.into_iter();
        loop {
            let batch: Vec<T> = it.by_ref().take(chunk).collect();
            if batch.is_empty() {
                break;
            }
            batches.push(batch);
        }
        let f = &f;
        std::thread::scope(|scope| {
            for (batch, out) in batches.into_iter().zip(results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (slot, item) in out.iter_mut().zip(batch) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every slot filled by its worker"))
            .collect()
    }
}

/// A small fingerprint-keyed latency memo for throwaway probe networks
/// (the corridor generator's closed-loop calibration probes the same
/// geometry repeatedly as its bisection converges).
#[derive(Debug, Default)]
pub struct RouteMemo {
    map: HashMap<u64, Option<f64>>,
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that ran the computation.
    pub misses: u64,
}

impl RouteMemo {
    /// An empty memo.
    pub fn new() -> RouteMemo {
        RouteMemo::default()
    }

    /// Return the memoized latency for `fingerprint`, computing it with
    /// `compute` on first sight.
    pub fn latency_ms(
        &mut self,
        fingerprint: u64,
        compute: impl FnOnce() -> Option<f64>,
    ) -> Option<f64> {
        if let Some(hit) = self.map.get(&fingerprint) {
            self.hits += 1;
            return *hit;
        }
        self.misses += 1;
        let value = compute();
        self.map.insert(fingerprint, value);
        value
    }
}

/// FNV-1a over a stream of 64-bit words — the fingerprint helper used
/// with [`RouteMemo`].
pub fn fingerprint_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corridor::{CME, EQUINIX_NY4};
    use hft_geodesy::gc_interpolate;
    use hft_uls::{
        CallSign, FrequencyAssignment, LicenseId, MicrowavePath, RadioService, StationClass,
        TowerSite,
    };

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::new(y, m, day).unwrap()
    }

    /// One license per hop of a straight CME→NY4 chain.
    fn chain_licenses(
        licensee: &str,
        grant: Date,
        cancel: Option<Date>,
        n: usize,
        base_id: u64,
    ) -> Vec<License> {
        let a = CME.position();
        let b = EQUINIX_NY4.position();
        let pos = |i: usize| gc_interpolate(&a, &b, 0.004 + (i as f64 / (n - 1) as f64) * 0.992);
        (0..n - 1)
            .map(|i| License {
                id: LicenseId(base_id + i as u64),
                call_sign: CallSign(format!("WQ{:05}", base_id + i as u64)),
                licensee: licensee.into(),
                service: RadioService::MG,
                station_class: StationClass::FXO,
                grant_date: grant,
                termination_date: None,
                cancellation_date: cancel,
                paths: vec![MicrowavePath {
                    tx: TowerSite::at(pos(i)),
                    rx: TowerSite::at(pos(i + 1)),
                    frequencies: vec![FrequencyAssignment { center_hz: 6.1e9 }],
                }],
            })
            .collect()
    }

    #[test]
    fn epochs_partition_the_timeline() {
        let lics = chain_licenses("Net", d(2015, 6, 1), Some(d(2018, 3, 1)), 5, 1);
        let s = AnalysisSession::over(&lics);
        // Events: 2015-06-01 (grant), 2018-03-01 (cancel) → 3 epochs.
        assert_eq!(s.index().epoch_count("Net"), 3);
        assert_eq!(s.epoch("Net", d(2015, 5, 31)), 0);
        assert_eq!(
            s.epoch("Net", d(2015, 6, 1)),
            1,
            "event day starts its epoch"
        );
        assert_eq!(s.epoch("Net", d(2018, 2, 28)), 1);
        assert_eq!(s.epoch("Net", d(2018, 3, 1)), 2);
        assert_eq!(s.epoch("Net", d(2025, 1, 1)), 2);
        assert_eq!(s.index().epoch_start("Net", 0), Date::MIN);
        assert_eq!(s.index().epoch_start("Net", 1), d(2015, 6, 1));
    }

    #[test]
    fn same_epoch_reconstructs_once() {
        let lics = chain_licenses("Net", d(2015, 6, 1), None, 25, 1);
        let s = AnalysisSession::over(&lics);
        let n1 = s.network("Net", d(2016, 1, 1));
        let n2 = s.network("Net", d(2019, 7, 4));
        assert!(Arc::ptr_eq(&n1, &n2), "same epoch must share the snapshot");
        let stats = s.stats();
        assert_eq!(stats.reconstructions, 1);
        assert_eq!(stats.network_hits, 1);
    }

    #[test]
    fn different_epochs_reconstruct_separately() {
        let lics = chain_licenses("Net", d(2015, 6, 1), Some(d(2018, 3, 1)), 25, 1);
        let s = AnalysisSession::over(&lics);
        let active = s.network("Net", d(2016, 1, 1));
        let gone = s.network("Net", d(2019, 1, 1));
        assert_eq!(active.tower_count(), 25);
        assert_eq!(gone.tower_count(), 0);
        assert_eq!(s.stats().reconstructions, 2);
    }

    #[test]
    fn network_at_restamps_exact_date() {
        let lics = chain_licenses("Net", d(2015, 6, 1), None, 5, 1);
        let s = AnalysisSession::over(&lics);
        let exact = s.network_at("Net", d(2017, 2, 3));
        assert_eq!(exact.as_of, d(2017, 2, 3));
        // The cached copy keeps the canonical epoch date.
        assert_eq!(s.network("Net", d(2017, 2, 3)).as_of, d(2015, 6, 1));
    }

    #[test]
    fn cached_route_and_apa_match_direct_computation() {
        let lics = chain_licenses("Net", d(2015, 6, 1), None, 25, 1);
        let s = AnalysisSession::over(&lics);
        let refs: Vec<&License> = lics.iter().collect();
        let direct_net = reconstruct(&refs, "Net", d(2020, 4, 1), &ReconstructOptions::default());
        let direct = crate::route::route(&direct_net, &CME, &EQUINIX_NY4).unwrap();
        let cached = s.route("Net", d(2020, 4, 1), &CME, &EQUINIX_NY4).unwrap();
        assert_eq!(cached.latency_ms, direct.latency_ms);
        assert_eq!(cached.towers, direct.towers);
        let direct_apa = crate::metrics::apa(&direct_net, &CME, &EQUINIX_NY4);
        assert_eq!(s.apa("Net", d(2020, 4, 1), &CME, &EQUINIX_NY4), direct_apa);
        // Second lookups hit.
        s.route("Net", d(2019, 1, 1), &CME, &EQUINIX_NY4);
        s.apa("Net", d(2018, 1, 1), &CME, &EQUINIX_NY4);
        let stats = s.stats();
        assert_eq!(stats.route_misses, 1);
        assert_eq!(stats.route_hits, 1);
        assert_eq!(stats.apa_misses, 1);
        assert_eq!(stats.apa_hits, 1);
    }

    #[test]
    fn trajectory_collapses_dates_to_epochs() {
        let lics = chain_licenses("Net", d(2015, 6, 1), Some(d(2018, 3, 1)), 25, 1);
        let s = AnalysisSession::over(&lics);
        let dates: Vec<Date> = (2013..=2021).map(|y| d(y, 1, 1)).collect();
        let t = s.trajectory("Net", &CME, &EQUINIX_NY4, &dates);
        assert_eq!(t.points.len(), 9);
        // 9 dates span 3 epochs → exactly 3 reconstructions.
        assert_eq!(s.stats().reconstructions, 3);
        assert!(s.stats().reconstructions_avoided() > 0);
        // Matches the direct per-date implementation.
        let refs: Vec<&License> = lics.iter().collect();
        let direct = crate::evolution::trajectory(
            &refs,
            "Net",
            &CME,
            &EQUINIX_NY4,
            &dates,
            &ReconstructOptions::default(),
        );
        assert_eq!(t, direct);
    }

    #[test]
    fn par_map_preserves_order_and_shares_cache() {
        let mut lics = chain_licenses("A", d(2015, 1, 1), None, 25, 1);
        lics.extend(chain_licenses("B", d(2016, 1, 1), None, 25, 1000));
        let s = AnalysisSession::over(&lics);
        let names: Vec<&str> = vec!["A", "B", "A", "B", "A"];
        let latencies = s.par_map(names.clone(), |name| {
            s.latency_ms(name, d(2020, 4, 1), &CME, &EQUINIX_NY4)
        });
        assert_eq!(latencies.len(), 5);
        assert_eq!(latencies[0], latencies[2]);
        assert_eq!(latencies[1], latencies[3]);
        assert!(latencies[0].is_some() && latencies[1].is_some());
        // Only two distinct (licensee, epoch) snapshots exist.
        assert_eq!(s.stats().reconstructions, 2);
        let empty: Vec<u8> = Vec::new();
        assert!(s.par_map(empty, |x: u8| x).is_empty());
    }

    #[test]
    fn par_geographic_search_matches_portal() {
        let lics = chain_licenses("Net", d(2015, 6, 1), None, 25, 1);
        let db = UlsDatabase::from_licenses(lics);
        let s = AnalysisSession::new(&db);
        let a = CME.position();
        let b = EQUINIX_NY4.position();
        let centers = vec![a, b, gc_interpolate(&a, &b, 0.5)];
        let fanned = s.par_geographic_search(&centers, 25.0).unwrap();
        assert_eq!(fanned.len(), centers.len());
        for (center, got) in centers.iter().zip(&fanned) {
            let got_ids: Vec<u64> = got.iter().map(|l| l.id.0).collect();
            let direct_ids: Vec<u64> = db
                .geographic_search(center, 25.0)
                .iter()
                .map(|l| l.id.0)
                .collect();
            assert_eq!(got_ids, direct_ids);
        }
        assert!(!fanned[0].is_empty(), "probe at CME must see the chain");

        // Sessions without a portal have nothing to search.
        let bare = chain_licenses("X", d(2015, 1, 1), None, 5, 900);
        let s2 = AnalysisSession::over(&bare);
        assert!(s2.par_geographic_search(&[a], 10.0).is_none());
    }

    #[test]
    fn shared_session_outlives_its_local_handle() {
        // A shared session co-owns its corpus: the Arc handle the caller
        // held can be dropped (as the ingest applier does when it
        // publishes a newer generation) and the session stays valid.
        let lics = chain_licenses("Net", d(2015, 6, 1), None, 25, 1);
        let borrowed_db = UlsDatabase::from_licenses(lics);
        let borrowed = AnalysisSession::new(&borrowed_db);
        let session: AnalysisSession<'static> = {
            let arc = Arc::new(borrowed_db.clone());
            AnalysisSession::shared(Arc::clone(&arc))
            // `arc` dropped here; the session keeps the corpus alive.
        };
        let want = borrowed.network("Net", d(2020, 4, 1));
        let got = session.network("Net", d(2020, 4, 1));
        assert_eq!(got.tower_count(), want.tower_count());
        assert_eq!(got.as_of, want.as_of);
        // Portal-backed operations work through the shared corpus too.
        assert!(session.db().is_some());
        let probes = vec![CME.position()];
        let hits = session.par_geographic_search(&probes, 25.0).unwrap();
        assert!(!hits[0].is_empty());
        assert_eq!(session.active_count("Net", d(2020, 4, 1)), 24);
    }

    #[test]
    fn route_memo_hits_on_repeat_fingerprints() {
        let mut memo = RouteMemo::new();
        let mut evals = 0;
        let fp = fingerprint_words([1, 2, 3]);
        for _ in 0..5 {
            let v = memo.latency_ms(fp, || {
                evals += 1;
                Some(4.2)
            });
            assert_eq!(v, Some(4.2));
        }
        assert_eq!(evals, 1);
        assert_eq!(memo.hits, 4);
        assert_eq!(memo.misses, 1);
        assert_ne!(fingerprint_words([1, 2, 3]), fingerprint_words([1, 3, 2]));
    }

    #[test]
    fn stats_json_is_compact_and_key_ordered() {
        let lics = chain_licenses("Net", d(2015, 6, 1), None, 5, 1);
        let s = AnalysisSession::over(&lics);
        s.network("Net", d(2016, 1, 1));
        s.network("Net", d(2017, 1, 1));
        let json = s.stats().to_json();
        assert_eq!(
            json,
            "{\"network_hits\":1,\"reconstructions\":1,\"route_hits\":0,\
             \"route_misses\":0,\"apa_hits\":0,\"apa_misses\":0,\
             \"graph_hits\":0,\"graph_misses\":0}",
            "fixed key order, compact writer"
        );
    }

    #[test]
    fn options_key_distinguishes_options() {
        let a = OptionsKey::from(&ReconstructOptions::default());
        let b = OptionsKey::from(&ReconstructOptions {
            min_link_m: 1.0,
            ..ReconstructOptions::default()
        });
        assert_ne!(a, b);
        assert_eq!(a, OptionsKey::from(&ReconstructOptions::default()));
    }
}
