//! # hft-core
//!
//! The primary contribution of the IMC'20 paper, as a library: given a
//! corpus of FCC ULS license records, reconstruct each licensee's
//! microwave network *as of any date*, and analyze it the way the paper
//! does.
//!
//! The pipeline (§2.3 of the paper):
//!
//! 1. [`reconstruct`] — select the licensee's licenses active on the
//!    as-of date, snap tower coordinates to a one-arc-second grid, and
//!    stitch links sharing a tower into a [`Network`] graph.
//! 2. [`route`] — augment the network with the two data centers, adding
//!    geodesic *fiber* tails (at `2c/3`) from each data center to every
//!    tower within 50 km, and run Dijkstra with one-way propagation
//!    latency as the edge cost (air at `c` for microwave links).
//! 3. [`metrics`] — alternate path availability (APA), link-length and
//!    frequency CDFs over low-latency paths, as in §5.
//! 4. [`evolution`] — longitudinal latency and active-license series, as
//!    in §4 (Figs 1 and 2).
//! 5. [`yaml`] — the human-readable YAML network dump the paper's tool
//!    publishes, with a matching parser.
//!
//! ```
//! use hft_core::corridor;
//!
//! let cme = corridor::CME;
//! let ny4 = corridor::EQUINIX_NY4;
//! let d_km = cme.position().geodesic_distance_m(&ny4.position()) / 1000.0;
//! assert!((d_km - 1186.0).abs() < 0.5); // the paper's Table 2 distance
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod corridor;
pub mod design;
pub mod entity;
pub mod evolution;
pub mod metrics;
pub mod network;
pub mod overhead;
pub mod reconstruct;
pub mod route;
pub mod session;
pub mod weather;
pub mod yaml;

pub use cdf::Cdf;
pub use corridor::DataCenter;
pub use network::{MwLink, Network, Tower};
pub use reconstruct::{reconstruct, ReconstructOptions};
pub use route::{route, Route, RoutingGraph};
pub use session::{AnalysisSession, LicenseIndex, RouteMemo, SessionStats, StatsSnapshot};
