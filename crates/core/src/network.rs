//! The reconstructed-network model.

use hft_geodesy::{LatLon, SnappedCoord};
use hft_netgraph::{Graph, NodeId};
use hft_time::Date;
use hft_uls::LicenseId;

/// A physical tower: the node type of a reconstructed network.
#[derive(Debug, Clone, PartialEq)]
pub struct Tower {
    /// Representative position (from the first license referencing the
    /// tower; later filings within the snap tolerance are merged).
    pub position: LatLon,
    /// The snap-grid cell identifying this tower.
    pub cell: SnappedCoord,
    /// Ground elevation above sea level, meters.
    pub ground_elevation_m: f64,
    /// Structure height above ground, meters.
    pub structure_height_m: f64,
}

/// A stitched microwave link: the edge type of a reconstructed network.
///
/// A link may be backed by several licenses (e.g. one per direction, or
/// re-filings); their ids and authorized frequencies are merged.
#[derive(Debug, Clone, PartialEq)]
pub struct MwLink {
    /// Geodesic tower-to-tower length, meters.
    pub length_m: f64,
    /// Authorized center frequencies, GHz, ascending, deduplicated.
    pub frequencies_ghz: Vec<f64>,
    /// The licenses backing this link, ascending.
    pub licenses: Vec<LicenseId>,
}

impl MwLink {
    /// Link length in km (the unit of Fig. 4a).
    pub fn length_km(&self) -> f64 {
        self.length_m / 1000.0
    }
}

/// A licensee's reconstructed network at a given as-of date.
#[derive(Debug, Clone)]
pub struct Network {
    /// Licensee name as filed.
    pub licensee: String,
    /// Reconstruction date.
    pub as_of: Date,
    /// Towers and stitched microwave links.
    pub graph: Graph<Tower, MwLink>,
}

impl Network {
    /// Number of towers.
    pub fn tower_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of stitched microwave links.
    pub fn link_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Number of active licenses backing the network (distinct license
    /// ids across all links).
    pub fn license_count(&self) -> usize {
        let mut ids: Vec<LicenseId> = self
            .graph
            .edges()
            .flat_map(|(_, _, _, l)| l.licenses.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// The tower nearest to `point`, with its geodesic distance in meters.
    /// `None` for an empty network.
    pub fn nearest_tower(&self, point: &LatLon) -> Option<(NodeId, f64)> {
        self.graph
            .nodes()
            .map(|(id, t)| (id, t.position.geodesic_distance_m(point)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(core::cmp::Ordering::Equal))
    }

    /// All towers within `radius_km` of `point`.
    pub fn towers_within(&self, point: &LatLon, radius_km: f64) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self
            .graph
            .nodes()
            .map(|(id, t)| (id, t.position.geodesic_distance_m(point)))
            .filter(|(_, d)| *d <= radius_km * 1000.0)
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(core::cmp::Ordering::Equal));
        v
    }

    /// Total microwave route-kilometers in the network.
    pub fn total_link_km(&self) -> f64 {
        self.graph
            .edges()
            .map(|(_, _, _, l)| l.length_m)
            .sum::<f64>()
            / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hft_geodesy::SnapGrid;

    fn tower(lat: f64, lon: f64) -> Tower {
        let position = LatLon::new(lat, lon).unwrap();
        Tower {
            position,
            cell: SnapGrid::arc_second().snap(&position),
            ground_elevation_m: 230.0,
            structure_height_m: 110.0,
        }
    }

    fn tiny_network() -> Network {
        let mut graph = Graph::new();
        let a = graph.add_node(tower(41.76, -88.17));
        let b = graph.add_node(tower(41.70, -87.60));
        let c = graph.add_node(tower(41.65, -87.10));
        let ab = MwLink {
            length_m: 48_000.0,
            frequencies_ghz: vec![11.2],
            licenses: vec![LicenseId(1), LicenseId(2)],
        };
        let bc = MwLink {
            length_m: 42_000.0,
            frequencies_ghz: vec![11.3],
            licenses: vec![LicenseId(2)],
        };
        graph.add_edge(a, b, ab);
        graph.add_edge(b, c, bc);
        Network {
            licensee: "Test Net".into(),
            as_of: Date::new(2020, 4, 1).unwrap(),
            graph,
        }
    }

    #[test]
    fn counts() {
        let n = tiny_network();
        assert_eq!(n.tower_count(), 3);
        assert_eq!(n.link_count(), 2);
        // LicenseId(2) backs both links; distinct count is 2.
        assert_eq!(n.license_count(), 2);
    }

    #[test]
    fn nearest_tower_picks_closest() {
        let n = tiny_network();
        let near_a = LatLon::new(41.77, -88.18).unwrap();
        let (id, d) = n.nearest_tower(&near_a).unwrap();
        assert_eq!(id.index(), 0);
        assert!(d < 2_000.0);
    }

    #[test]
    fn towers_within_radius_sorted() {
        let n = tiny_network();
        let p = LatLon::new(41.70, -87.60).unwrap();
        let hits = n.towers_within(&p, 60.0);
        assert!(hits.len() >= 2);
        for w in hits.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn empty_network() {
        let n = Network {
            licensee: "Empty".into(),
            as_of: Date::new(2020, 4, 1).unwrap(),
            graph: Graph::new(),
        };
        assert!(n
            .nearest_tower(&LatLon::new(41.0, -88.0).unwrap())
            .is_none());
        assert_eq!(n.license_count(), 0);
        assert_eq!(n.total_link_km(), 0.0);
    }

    #[test]
    fn total_link_km_sums() {
        let n = tiny_network();
        assert!((n.total_link_km() - 90.0).abs() < 1e-9);
    }
}
