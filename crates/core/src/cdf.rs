//! Empirical cumulative distribution functions, for the paper's Fig. 4.

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from a sample. Non-finite values are rejected.
    ///
    /// Returns `None` when the (filtered) sample is empty or any value is
    /// NaN/∞ — an empty CDF has no quantiles and silently propagating it
    /// produces misleading plots.
    pub fn new(mut values: Vec<f64>) -> Option<Cdf> {
        if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
            return None;
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        Some(Cdf { sorted: values })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is empty (never true for a constructed CDF).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Empirical CDF evaluated at `x`: fraction of samples ≤ `x`.
    pub fn at(&self, x: f64) -> f64 {
        // Index of first element > x.
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `q`-quantile for `q ∈ [0, 1]` using the nearest-rank method.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Fraction of samples strictly below `x` — e.g. "more than 94% of
    /// the frequencies are under 7 GHz" (§5).
    pub fn fraction_below(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v < x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `(x, F(x))` step points for plotting, one per sample.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_non_finite() {
        assert!(Cdf::new(vec![]).is_none());
        assert!(Cdf::new(vec![1.0, f64::NAN]).is_none());
        assert!(Cdf::new(vec![f64::INFINITY]).is_none());
    }

    #[test]
    fn evaluation_on_known_sample() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]).unwrap();
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(1.0), 0.25);
        assert_eq!(c.at(2.5), 0.5);
        assert_eq!(c.at(4.0), 1.0);
        assert_eq!(c.at(100.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let c = Cdf::new((1..=10).map(|i| i as f64).collect()).unwrap();
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(0.1), 1.0);
        assert_eq!(c.quantile(0.5), 5.0);
        assert_eq!(c.median(), 5.0);
        assert_eq!(c.quantile(1.0), 10.0);
        assert_eq!(c.quantile(2.0), 10.0); // clamped
    }

    #[test]
    fn median_of_odd_sample() {
        let c = Cdf::new(vec![10.0, 30.0, 20.0]).unwrap();
        assert_eq!(c.median(), 20.0);
    }

    #[test]
    fn extremes_and_mean() {
        let c = Cdf::new(vec![36.0, 48.5, 20.0]).unwrap();
        assert_eq!(c.min(), 20.0);
        assert_eq!(c.max(), 48.5);
        assert!((c.mean() - (36.0 + 48.5 + 20.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_below_is_strict() {
        let c = Cdf::new(vec![6.0, 6.0, 7.0, 11.0]).unwrap();
        assert_eq!(c.fraction_below(7.0), 0.5);
        assert_eq!(c.fraction_below(6.0), 0.0);
        assert_eq!(c.fraction_below(12.0), 1.0);
    }

    #[test]
    fn steps_are_monotone_and_end_at_one() {
        let c = Cdf::new(vec![5.0, 3.0, 8.0, 1.0]).unwrap();
        let s = c.steps();
        assert_eq!(s.len(), 4);
        for w in s.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(s.last().unwrap().1, 1.0);
    }

    #[test]
    fn duplicate_values_handled() {
        let c = Cdf::new(vec![2.0, 2.0, 2.0]).unwrap();
        assert_eq!(c.median(), 2.0);
        assert_eq!(c.at(2.0), 1.0);
        assert_eq!(c.at(1.9), 0.0);
    }
}
