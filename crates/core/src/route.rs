//! End-to-end routing between data centers over a reconstructed network.
//!
//! Per §2.3 of the paper: data centers reach nearby towers (up to 50 km
//! away) over short fiber segments assumed to follow the geodesic, at
//! roughly `2c/3`; microwave hops run at (almost) `c`. Dijkstra with
//! per-segment propagation latency as the edge cost yields each network's
//! lowest-latency route.

use crate::corridor::DataCenter;
use crate::network::Network;
use hft_geodesy::{latency_seconds, LatLon, Medium};
use hft_netgraph::{dijkstra, EdgeId, Graph, NodeId};

/// Maximum data-center-to-tower fiber tail, km (paper's assumption).
pub const MAX_FIBER_TAIL_KM: f64 = 50.0;

/// Node payload of the routing graph.
#[derive(Debug, Clone, PartialEq)]
pub enum RoutingNode {
    /// A tower, indexed by the network graph's node id.
    Tower(NodeId),
    /// One of the two data-center endpoints.
    DataCenter {
        /// Data-center code (e.g. `"CME"`).
        code: &'static str,
        /// The data center's position.
        position: LatLon,
    },
}

/// Edge payload of the routing graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingEdge {
    /// Propagation medium (air for microwave, fiber for the tails).
    pub medium: Medium,
    /// Geodesic segment length, meters.
    pub length_m: f64,
    /// For microwave edges, the underlying network edge.
    pub mw_edge: Option<EdgeId>,
}

impl RoutingEdge {
    /// One-way propagation latency of this edge, seconds.
    pub fn latency_s(&self) -> f64 {
        latency_seconds(self.length_m, self.medium)
    }
}

/// A network augmented with two data-center endpoints and fiber tails —
/// the graph Dijkstra actually runs on. Build once per (network, DC pair)
/// and probe many times (APA removes edges via filters, not mutation).
#[derive(Debug, Clone)]
pub struct RoutingGraph {
    /// The augmented graph.
    pub graph: Graph<RoutingNode, RoutingEdge>,
    /// Node handle of the origin data center.
    pub source: NodeId,
    /// Node handle of the destination data center.
    pub target: NodeId,
    /// Geodesic distance between the data centers, meters.
    pub geodesic_m: f64,
}

/// The lowest-latency route through a network between two data centers.
#[derive(Debug, Clone)]
pub struct Route {
    /// One-way latency, milliseconds (the paper's Table 1/2 metric).
    pub latency_ms: f64,
    /// Total path length, meters (microwave + fiber).
    pub length_m: f64,
    /// Microwave distance, meters.
    pub mw_m: f64,
    /// Fiber-tail distance, meters (both ends combined).
    pub fiber_m: f64,
    /// Towers traversed (microwave hops + 1).
    pub towers: usize,
    /// The network edges (microwave links) used, in path order.
    pub mw_edges: Vec<EdgeId>,
    /// The *routing-graph* edges of the fiber tails used (normally two:
    /// one per data center).
    pub fiber_edges: Vec<EdgeId>,
    /// Waypoints: origin DC, each tower, destination DC.
    pub waypoints: Vec<LatLon>,
}

impl Route {
    /// Path stretch relative to the DC-DC geodesic at `c`:
    /// `latency / (geodesic / c)`.
    pub fn stretch_vs_c(&self, geodesic_m: f64) -> f64 {
        let bound_ms = latency_seconds(geodesic_m, Medium::Air) * 1e3;
        self.latency_ms / bound_ms
    }
}

impl RoutingGraph {
    /// Build the routing graph for `network` between data centers `a`
    /// (source) and `b` (target): every tower within
    /// [`MAX_FIBER_TAIL_KM`] of a data center receives a geodesic fiber
    /// edge to it.
    pub fn build(network: &Network, a: &DataCenter, b: &DataCenter) -> RoutingGraph {
        let mut graph: Graph<RoutingNode, RoutingEdge> = Graph::new();
        // Mirror tower nodes; ids align because insertion order matches.
        for (id, _) in network.graph.nodes() {
            let mirrored = graph.add_node(RoutingNode::Tower(id));
            debug_assert_eq!(mirrored.index(), id.index());
        }
        // Mirror microwave edges.
        for (eid, u, v, link) in network.graph.edges() {
            graph.add_edge(
                NodeId::from_index(u.index()),
                NodeId::from_index(v.index()),
                RoutingEdge {
                    medium: Medium::Air,
                    length_m: link.length_m,
                    mw_edge: Some(eid),
                },
            );
        }
        // Data-center nodes and fiber tails.
        let source = graph.add_node(RoutingNode::DataCenter {
            code: a.code,
            position: a.position(),
        });
        let target = graph.add_node(RoutingNode::DataCenter {
            code: b.code,
            position: b.position(),
        });
        for (dc_node, dc) in [(source, a), (target, b)] {
            for (tower, dist_m) in network.towers_within(&dc.position(), MAX_FIBER_TAIL_KM) {
                graph.add_edge(
                    dc_node,
                    NodeId::from_index(tower.index()),
                    RoutingEdge {
                        medium: Medium::Fiber,
                        length_m: dist_m,
                        mw_edge: None,
                    },
                );
            }
        }
        let geodesic_m = a.position().geodesic_distance_m(&b.position());
        RoutingGraph {
            graph,
            source,
            target,
            geodesic_m,
        }
    }

    /// Lowest-latency route over edges passing `filter` (receiving the
    /// *network* edge id of microwave edges; fiber tails always pass).
    pub fn route_filtered(
        &self,
        network: &Network,
        mut filter: impl FnMut(EdgeId) -> bool,
    ) -> Option<Route> {
        self.route_with(network, |_, e| match e.mw_edge {
            Some(mw) => filter(mw),
            None => true,
        })
    }

    /// Lowest-latency route with full control over edge admission: the
    /// filter receives the *routing-graph* edge id and payload, so fiber
    /// tails can be restricted too (the APA metric pins them to the
    /// baseline route's tails).
    pub fn route_with(
        &self,
        network: &Network,
        mut filter: impl FnMut(EdgeId, &RoutingEdge) -> bool,
    ) -> Option<Route> {
        let sp = dijkstra(
            &self.graph,
            self.source,
            |_, e| e.latency_s(),
            |e| filter(e, self.graph.edge(e)),
        );
        let (nodes, edges) = sp.path(self.target)?;
        let mut mw_m = 0.0;
        let mut fiber_m = 0.0;
        let mut mw_edges = Vec::new();
        let mut fiber_edges = Vec::new();
        for e in &edges {
            let re = self.graph.edge(*e);
            match re.medium {
                Medium::Air | Medium::Vacuum => mw_m += re.length_m,
                Medium::Fiber => fiber_m += re.length_m,
            }
            match re.mw_edge {
                Some(mw) => mw_edges.push(mw),
                None => fiber_edges.push(*e),
            }
        }
        let latency_s = sp.distance(self.target).expect("path exists");
        let waypoints = nodes
            .iter()
            .map(|n| match self.graph.node(*n) {
                RoutingNode::Tower(t) => network.graph.node(*t).position,
                RoutingNode::DataCenter { position, .. } => *position,
            })
            .collect::<Vec<_>>();
        Some(Route {
            latency_ms: latency_s * 1e3,
            length_m: mw_m + fiber_m,
            mw_m,
            fiber_m,
            towers: nodes.len().saturating_sub(2),
            mw_edges,
            fiber_edges,
            waypoints,
        })
    }

    /// Latency (ms) of the lowest-latency route with all edges available,
    /// or `None` when the data centers are not connected.
    pub fn latency_ms(&self, network: &Network) -> Option<f64> {
        self.route_filtered(network, |_| true).map(|r| r.latency_ms)
    }
}

/// Convenience: build the routing graph and compute the unfiltered route.
pub fn route(network: &Network, a: &DataCenter, b: &DataCenter) -> Option<Route> {
    RoutingGraph::build(network, a, b).route_filtered(network, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corridor::{CME, EQUINIX_NY4};
    use crate::network::{MwLink, Tower};
    use hft_geodesy::{gc_interpolate, one_way_ms, SnapGrid};
    use hft_time::Date;

    /// Build a chain network of `n` towers along the CME→NY4 geodesic,
    /// with endpoints a few km from the data centers.
    fn chain_network(n: usize) -> Network {
        let a = CME.position();
        let b = EQUINIX_NY4.position();
        let mut graph = Graph::new();
        let snap = SnapGrid::arc_second();
        let mut prev: Option<NodeId> = None;
        for i in 0..n {
            // Slightly inset so the end towers sit ~5 km from the DCs.
            let t = 0.004 + (i as f64 / (n - 1) as f64) * 0.992;
            let position = gc_interpolate(&a, &b, t);
            let node = graph.add_node(Tower {
                position,
                cell: snap.snap(&position),
                ground_elevation_m: 230.0,
                structure_height_m: 110.0,
            });
            if let Some(p) = prev {
                let length_m = graph.node(p).position.geodesic_distance_m(&position);
                graph.add_edge(
                    p,
                    node,
                    MwLink {
                        length_m,
                        frequencies_ghz: vec![11.2],
                        licenses: vec![],
                    },
                );
            }
            prev = Some(node);
        }
        Network {
            licensee: "Chain".into(),
            as_of: Date::new(2020, 4, 1).unwrap(),
            graph,
        }
    }

    #[test]
    fn chain_routes_end_to_end() {
        let net = chain_network(25);
        let r = route(&net, &CME, &EQUINIX_NY4).expect("connected");
        // All 25 towers traversed; latency slightly above the c-bound.
        assert_eq!(r.towers, 25);
        assert_eq!(r.mw_edges.len(), 24);
        let bound_ms = one_way_ms(
            CME.position().geodesic_distance_m(&EQUINIX_NY4.position()),
            Medium::Air,
        );
        assert!(r.latency_ms > bound_ms, "cannot beat the speed of light");
        assert!(
            r.latency_ms < bound_ms * 1.01,
            "straight chain must be near-optimal: {} vs {bound_ms}",
            r.latency_ms
        );
        assert!(r.fiber_m > 0.0, "ends reach DCs via fiber");
        assert!(r.fiber_m < 2.0 * MAX_FIBER_TAIL_KM * 1000.0);
        assert_eq!(r.waypoints.len(), 27); // 25 towers + 2 DCs
    }

    #[test]
    fn stretch_vs_c_definition() {
        let net = chain_network(25);
        let rg = RoutingGraph::build(&net, &CME, &EQUINIX_NY4);
        let r = rg.route_filtered(&net, |_| true).unwrap();
        let s = r.stretch_vs_c(rg.geodesic_m);
        assert!(s > 1.0 && s < 1.01, "got {s}");
    }

    #[test]
    fn removing_chain_link_disconnects() {
        let net = chain_network(10);
        let rg = RoutingGraph::build(&net, &CME, &EQUINIX_NY4);
        let victim = net.graph.edge_ids().nth(4).unwrap();
        assert!(rg.route_filtered(&net, |e| e != victim).is_none());
    }

    #[test]
    fn fiber_tails_cost_more_than_air() {
        // A network forced to leave one tower early pays a longer fiber
        // tail. Use a 31-tower chain so the second-to-last tower (~43 km
        // out) is still within the 50 km fiber reach.
        let near = chain_network(31);
        let r_near = route(&near, &CME, &EQUINIX_NY4).unwrap();
        // Truncate the chain: drop the final hop, so the route must leave
        // the network one tower earlier (~49 km from NY4, still within the
        // 50 km fiber-tail limit) and pay a longer fiber tail.
        let n_edges = near.graph.edge_count();
        let rg = RoutingGraph::build(&near, &CME, &EQUINIX_NY4);
        let r_trunc = rg
            .route_filtered(&near, |e| e.index() < n_edges - 1)
            .expect("still reachable via longer fiber tail");
        assert!(r_trunc.latency_ms > r_near.latency_ms);
        assert!(r_trunc.fiber_m > r_near.fiber_m);
    }

    #[test]
    fn no_towers_near_dc_means_no_route() {
        // Chain that stops half-way across the corridor.
        let a = CME.position();
        let b = EQUINIX_NY4.position();
        let mut graph = Graph::new();
        let snap = SnapGrid::arc_second();
        let mut prev: Option<NodeId> = None;
        for i in 0..10 {
            let t = 0.004 + (i as f64 / 9.0) * 0.45; // ends mid-corridor
            let position = gc_interpolate(&a, &b, t);
            let node = graph.add_node(Tower {
                position,
                cell: snap.snap(&position),
                ground_elevation_m: 230.0,
                structure_height_m: 110.0,
            });
            if let Some(p) = prev {
                let length_m = graph.node(p).position.geodesic_distance_m(&position);
                graph.add_edge(
                    p,
                    node,
                    MwLink {
                        length_m,
                        frequencies_ghz: vec![6.1],
                        licenses: vec![],
                    },
                );
            }
            prev = Some(node);
        }
        let net = Network {
            licensee: "Half".into(),
            as_of: Date::new(2020, 4, 1).unwrap(),
            graph,
        };
        assert!(route(&net, &CME, &EQUINIX_NY4).is_none());
    }

    #[test]
    fn empty_network_no_route() {
        let net = Network {
            licensee: "Empty".into(),
            as_of: Date::new(2020, 4, 1).unwrap(),
            graph: Graph::new(),
        };
        assert!(route(&net, &CME, &EQUINIX_NY4).is_none());
    }

    #[test]
    fn mw_plus_fiber_sum_to_length() {
        let net = chain_network(25);
        let r = route(&net, &CME, &EQUINIX_NY4).unwrap();
        assert!((r.mw_m + r.fiber_m - r.length_m).abs() < 1e-6);
    }

    #[test]
    fn latency_accounts_for_slower_fiber() {
        let net = chain_network(25);
        let r = route(&net, &CME, &EQUINIX_NY4).unwrap();
        let naive_all_air_ms = one_way_ms(r.length_m, Medium::Air);
        let expected_ms = one_way_ms(r.mw_m, Medium::Air) + one_way_ms(r.fiber_m, Medium::Fiber);
        assert!((r.latency_ms - expected_ms).abs() < 1e-9);
        assert!(r.latency_ms > naive_all_air_ms);
    }
}
