//! Human-readable YAML network dumps, matching the paper tool's output
//! ("It outputs the networks as human-readable YAML files, incorporating
//! information about tower coordinates and heights, link lengths, and
//! operating frequencies").
//!
//! The emitter writes a small, fixed YAML subset; the parser reads exactly
//! that subset back (sufficient for round-tripping our own dumps — it is
//! not a general YAML parser and rejects anything outside the dialect).

use crate::network::{MwLink, Network, Tower};
use core::fmt;
use hft_geodesy::{LatLon, SnapGrid};
use hft_netgraph::{Graph, NodeId};
use hft_time::Date;
use hft_uls::LicenseId;

/// Serialize a network to the YAML dialect.
pub fn to_yaml(network: &Network) -> String {
    let mut out = String::new();
    out.push_str(&format!("licensee: {}\n", quote(&network.licensee)));
    out.push_str(&format!("as_of: {}\n", network.as_of.to_iso()));
    out.push_str(&format!("towers: # {}\n", network.tower_count()));
    for (id, t) in network.graph.nodes() {
        out.push_str(&format!(
            "  - id: {}\n    lat: {:.6}\n    lon: {:.6}\n    ground_m: {:.1}\n    height_m: {:.1}\n",
            id.index(),
            t.position.lat_deg(),
            t.position.lon_deg(),
            t.ground_elevation_m,
            t.structure_height_m,
        ));
    }
    out.push_str(&format!("links: # {}\n", network.link_count()));
    for (_, u, v, link) in network.graph.edges() {
        let freqs: Vec<String> = link
            .frequencies_ghz
            .iter()
            .map(|f| format!("{f:.5}"))
            .collect();
        let lics: Vec<String> = link.licenses.iter().map(|l| l.0.to_string()).collect();
        out.push_str(&format!(
            "  - a: {}\n    b: {}\n    length_km: {:.3}\n    frequencies_ghz: [{}]\n    licenses: [{}]\n",
            u.index(),
            v.index(),
            link.length_m / 1000.0,
            freqs.join(", "),
            lics.join(", "),
        ));
    }
    out
}

fn quote(s: &str) -> String {
    // Quote when the name could be misparsed.
    if s.is_empty()
        || s.contains(':')
        || s.contains('#')
        || s.starts_with(' ')
        || s.ends_with(' ')
        || s.starts_with('"')
    {
        format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
    } else {
        s.to_string()
    }
}

fn unquote(s: &str) -> String {
    let s = s.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        s[1..s.len() - 1]
            .replace("\\\"", "\"")
            .replace("\\\\", "\\")
    } else {
        s.to_string()
    }
}

/// Error parsing a YAML network dump.
#[derive(Debug, Clone, PartialEq)]
pub struct YamlError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for YamlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "yaml line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for YamlError {}

#[derive(Default)]
struct TowerDraft {
    id: Option<usize>,
    lat: Option<f64>,
    lon: Option<f64>,
    ground: Option<f64>,
    height: Option<f64>,
}

#[derive(Default)]
struct LinkDraft {
    a: Option<usize>,
    b: Option<usize>,
    frequencies: Vec<f64>,
    licenses: Vec<u64>,
}

/// Parse a network from the YAML dialect produced by [`to_yaml`].
///
/// Link lengths are *recomputed* from tower coordinates rather than
/// trusted from the file, so a hand-edited dump stays self-consistent.
pub fn from_yaml(text: &str) -> Result<Network, YamlError> {
    enum Section {
        Top,
        Towers,
        Links,
    }
    let mut licensee: Option<String> = None;
    let mut as_of: Option<Date> = None;
    let mut section = Section::Top;
    let mut towers: Vec<TowerDraft> = Vec::new();
    let mut links: Vec<LinkDraft> = Vec::new();

    let err = |line: usize, message: String| YamlError { line, message };

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        // Strip comments (outside quotes; our dialect never quotes '#').
        let content = match raw.find('#') {
            Some(i) if !raw[..i].contains('"') => &raw[..i],
            _ => raw,
        };
        if content.trim().is_empty() {
            continue;
        }
        let indent = content.len() - content.trim_start().len();
        let body = content.trim();

        if indent == 0 {
            let (key, value) = body
                .split_once(':')
                .ok_or_else(|| err(line, format!("expected `key:`, got {body:?}")))?;
            match key {
                "licensee" => licensee = Some(unquote(value)),
                "as_of" => {
                    as_of = Some(
                        Date::parse_iso(value.trim())
                            .map_err(|e| err(line, format!("bad as_of date: {e}")))?,
                    )
                }
                "towers" => section = Section::Towers,
                "links" => section = Section::Links,
                other => return Err(err(line, format!("unknown top-level key {other:?}"))),
            }
            continue;
        }

        let starts_item = body.starts_with("- ");
        let kv = if starts_item { &body[2..] } else { body };
        let (key, value) = kv
            .split_once(':')
            .ok_or_else(|| err(line, format!("expected `key: value`, got {kv:?}")))?;
        let key = key.trim();
        let value = value.trim();
        let parse_f64 = |v: &str| -> Result<f64, YamlError> {
            v.parse()
                .map_err(|_| err(line, format!("bad number {v:?} for {key}")))
        };
        let parse_usize = |v: &str| -> Result<usize, YamlError> {
            v.parse()
                .map_err(|_| err(line, format!("bad integer {v:?} for {key}")))
        };
        let parse_list = |v: &str| -> Result<Vec<f64>, YamlError> {
            let inner = v
                .strip_prefix('[')
                .and_then(|v| v.strip_suffix(']'))
                .ok_or_else(|| err(line, format!("expected [list] for {key}, got {v:?}")))?;
            inner
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse()
                        .map_err(|_| err(line, format!("bad list item {s:?}")))
                })
                .collect()
        };

        match section {
            Section::Top => return Err(err(line, "indented content before any section".into())),
            Section::Towers => {
                if starts_item {
                    towers.push(TowerDraft::default());
                }
                let t = towers
                    .last_mut()
                    .ok_or_else(|| err(line, "tower field before first `- id:`".into()))?;
                match key {
                    "id" => t.id = Some(parse_usize(value)?),
                    "lat" => t.lat = Some(parse_f64(value)?),
                    "lon" => t.lon = Some(parse_f64(value)?),
                    "ground_m" => t.ground = Some(parse_f64(value)?),
                    "height_m" => t.height = Some(parse_f64(value)?),
                    other => return Err(err(line, format!("unknown tower key {other:?}"))),
                }
            }
            Section::Links => {
                if starts_item {
                    links.push(LinkDraft::default());
                }
                let l = links
                    .last_mut()
                    .ok_or_else(|| err(line, "link field before first `- a:`".into()))?;
                match key {
                    "a" => l.a = Some(parse_usize(value)?),
                    "b" => l.b = Some(parse_usize(value)?),
                    "length_km" => {
                        let _ = parse_f64(value)?; // validated but recomputed
                    }
                    "frequencies_ghz" => l.frequencies = parse_list(value)?,
                    "licenses" => {
                        l.licenses = parse_list(value)?.into_iter().map(|v| v as u64).collect()
                    }
                    other => return Err(err(line, format!("unknown link key {other:?}"))),
                }
            }
        }
    }

    let licensee = licensee.ok_or_else(|| err(0, "missing `licensee`".into()))?;
    let as_of = as_of.ok_or_else(|| err(0, "missing `as_of`".into()))?;

    let mut graph: Graph<Tower, MwLink> = Graph::new();
    let snap = SnapGrid::arc_second();
    for (i, t) in towers.iter().enumerate() {
        let need = |v: Option<f64>, what: &str| {
            v.ok_or_else(|| err(0, format!("tower {i}: missing {what}")))
        };
        let id =
            t.id.ok_or_else(|| err(0, format!("tower {i}: missing id")))?;
        if id != i {
            return Err(err(
                0,
                format!("tower ids must be dense and ordered; got {id} at {i}"),
            ));
        }
        let position = LatLon::new(need(t.lat, "lat")?, need(t.lon, "lon")?)
            .map_err(|e| err(0, e.to_string()))?;
        graph.add_node(Tower {
            position,
            cell: snap.snap(&position),
            ground_elevation_m: need(t.ground, "ground_m")?,
            structure_height_m: need(t.height, "height_m")?,
        });
    }
    for (i, l) in links.iter().enumerate() {
        let a = l.a.ok_or_else(|| err(0, format!("link {i}: missing a")))?;
        let b = l.b.ok_or_else(|| err(0, format!("link {i}: missing b")))?;
        if a >= graph.node_count() || b >= graph.node_count() {
            return Err(err(0, format!("link {i}: endpoint out of range")));
        }
        if a == b {
            return Err(err(0, format!("link {i}: self-loop")));
        }
        let (na, nb) = (NodeId::from_index(a), NodeId::from_index(b));
        let length_m = graph
            .node(na)
            .position
            .geodesic_distance_m(&graph.node(nb).position);
        graph.add_edge(
            na,
            nb,
            MwLink {
                length_m,
                frequencies_ghz: l.frequencies.clone(),
                licenses: l.licenses.iter().map(|&v| LicenseId(v)).collect(),
            },
        );
    }
    Ok(Network {
        licensee,
        as_of,
        graph,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Network {
        let mut graph: Graph<Tower, MwLink> = Graph::new();
        let snap = SnapGrid::arc_second();
        let p1 = LatLon::new(41.7625, -88.1712).unwrap();
        let p2 = LatLon::new(41.7000, -87.6000).unwrap();
        let p3 = LatLon::new(41.6500, -87.1000).unwrap();
        let a = graph.add_node(Tower {
            position: p1,
            cell: snap.snap(&p1),
            ground_elevation_m: 230.0,
            structure_height_m: 110.0,
        });
        let b = graph.add_node(Tower {
            position: p2,
            cell: snap.snap(&p2),
            ground_elevation_m: 220.5,
            structure_height_m: 95.0,
        });
        let c = graph.add_node(Tower {
            position: p3,
            cell: snap.snap(&p3),
            ground_elevation_m: 210.0,
            structure_height_m: 80.0,
        });
        let l1 = MwLink {
            length_m: p1.geodesic_distance_m(&p2),
            frequencies_ghz: vec![11.245, 11.485],
            licenses: vec![LicenseId(12), LicenseId(99)],
        };
        let l2 = MwLink {
            length_m: p2.geodesic_distance_m(&p3),
            frequencies_ghz: vec![6.19],
            licenses: vec![LicenseId(12)],
        };
        graph.add_edge(a, b, l1);
        graph.add_edge(b, c, l2);
        Network {
            licensee: "New Line Networks".into(),
            as_of: Date::new(2020, 4, 1).unwrap(),
            graph,
        }
    }

    #[test]
    fn emits_expected_shape() {
        let y = to_yaml(&sample());
        assert!(y.starts_with("licensee: New Line Networks\nas_of: 2020-04-01\n"));
        assert!(y.contains("towers: # 3"));
        assert!(y.contains("links: # 2"));
        assert!(y.contains("frequencies_ghz: [11.24500, 11.48500]"));
        assert!(y.contains("licenses: [12, 99]"));
    }

    #[test]
    fn round_trip() {
        let orig = sample();
        let back = from_yaml(&to_yaml(&orig)).unwrap();
        assert_eq!(back.licensee, orig.licensee);
        assert_eq!(back.as_of, orig.as_of);
        assert_eq!(back.tower_count(), 3);
        assert_eq!(back.link_count(), 2);
        for (id, t) in back.graph.nodes() {
            let o = orig.graph.node(id);
            assert!((t.position.lat_deg() - o.position.lat_deg()).abs() < 1e-6);
            assert!((t.position.lon_deg() - o.position.lon_deg()).abs() < 1e-6);
            assert!((t.ground_elevation_m - o.ground_elevation_m).abs() < 0.05);
        }
        for (id, _, _, l) in back.graph.edges() {
            let o = orig.graph.edge(id);
            assert!((l.length_m - o.length_m).abs() < 1.0);
            assert_eq!(l.licenses, o.licenses);
            assert_eq!(l.frequencies_ghz.len(), o.frequencies_ghz.len());
        }
    }

    #[test]
    fn quoted_licensee_round_trip() {
        let mut net = sample();
        net.licensee = "Weird: Name #7".into();
        let back = from_yaml(&to_yaml(&net)).unwrap();
        assert_eq!(back.licensee, "Weird: Name #7");
    }

    #[test]
    fn rejects_missing_header() {
        assert!(from_yaml("towers: # 0\nlinks: # 0\n").is_err());
        assert!(from_yaml("licensee: X\ntowers: # 0\nlinks: # 0\n").is_err());
    }

    #[test]
    fn rejects_bad_link_endpoint() {
        let y = "\
licensee: X
as_of: 2020-04-01
towers: # 1
  - id: 0
    lat: 41.0
    lon: -88.0
    ground_m: 230.0
    height_m: 110.0
links: # 1
  - a: 0
    b: 5
    length_km: 1.0
    frequencies_ghz: [6.1]
    licenses: [1]
";
        let e = from_yaml(y).unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn rejects_non_dense_tower_ids() {
        let y = "\
licensee: X
as_of: 2020-04-01
towers: # 1
  - id: 3
    lat: 41.0
    lon: -88.0
    ground_m: 230.0
    height_m: 110.0
links: # 0
";
        assert!(from_yaml(y).is_err());
    }

    #[test]
    fn rejects_unknown_keys_with_line_numbers() {
        let y = "licensee: X\nas_of: 2020-04-01\nbogus: 1\n";
        let e = from_yaml(y).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn lengths_recomputed_from_coordinates() {
        // Tamper with length_km in the dump; parsed network must ignore it.
        let y = to_yaml(&sample()).replace("length_km: 4", "length_km: 9");
        let back = from_yaml(&y).unwrap();
        let orig = sample();
        for (id, _, _, l) in back.graph.edges() {
            assert!((l.length_m - orig.graph.edge(id).length_m).abs() < 1.0);
        }
    }

    #[test]
    fn empty_network_round_trip() {
        let net = Network {
            licensee: "Empty".into(),
            as_of: Date::new(2013, 1, 1).unwrap(),
            graph: Graph::new(),
        };
        let back = from_yaml(&to_yaml(&net)).unwrap();
        assert_eq!(back.tower_count(), 0);
        assert_eq!(back.link_count(), 0);
    }
}
