//! Forward design of low-latency microwave corridors (§6 takeaways).
//!
//! The paper closes with design lessons for future non-HFT terrestrial
//! microwave networks:
//!
//! * engineer towards high APA using redundant links close to the
//!   shortest path;
//! * link lengths trade cost (fewer towers) against reliability;
//! * if the primary path must use high bands for bandwidth, run the
//!   alternates on lower, rain-robust frequencies.
//!
//! This module turns those lessons into a constructive procedure: given a
//! corridor, a tower budget and an APA target, synthesize a network and
//! *verify it with the same metrics the paper measures competitors by*.

use crate::corridor::DataCenter;
use crate::metrics;
use crate::network::{MwLink, Network, Tower};
use crate::route::{route, RoutingGraph};
use hft_geodesy::{gc_destination, gc_initial_bearing_deg, gc_interpolate, LatLon, SnapGrid};
use hft_netgraph::{disjoint_shortest_pair, Graph, NodeId};
use hft_time::Date;

/// Parameters of a corridor design.
#[derive(Debug, Clone)]
pub struct DesignSpec {
    /// Towers on the primary chain (including both end towers).
    pub primary_towers: usize,
    /// Fraction of primary links to protect with a parallel rail
    /// (`1.0` = a fully disjoint standby path).
    pub protected_fraction: f64,
    /// Rail hop length, km (shorter = more reliable, more towers).
    pub rail_hop_km: f64,
    /// Lateral rail offset from the primary, km.
    pub rail_offset_km: f64,
    /// Frequency for primary links, GHz (capacity band).
    pub primary_ghz: f64,
    /// Frequency for rail links, GHz (rain-robust band) — the paper's
    /// "alternate paths may use lower frequencies" lesson.
    pub rail_ghz: f64,
    /// Distance of the end towers from each data center, km.
    pub tail_km: f64,
}

impl Default for DesignSpec {
    fn default() -> Self {
        DesignSpec {
            primary_towers: 25,
            protected_fraction: 1.0,
            rail_hop_km: 36.0,
            rail_offset_km: 4.0,
            primary_ghz: 11.2,
            rail_ghz: 6.2,
            tail_km: 1.5,
        }
    }
}

/// Synthesize a corridor network per the spec: a straight primary chain
/// on the geodesic plus a parallel rail over the protected fraction
/// (anchored at primary towers, so single-link failures reroute locally).
pub fn design_corridor(a: &DataCenter, b: &DataCenter, spec: &DesignSpec) -> Network {
    assert!(spec.primary_towers >= 3, "need at least three towers");
    assert!(
        (0.0..=1.0).contains(&spec.protected_fraction),
        "fraction in [0,1]"
    );
    let snap = SnapGrid::arc_second();
    let pa = a.position();
    let pb = b.position();
    let start = gc_destination(&pa, gc_initial_bearing_deg(&pa, &pb), spec.tail_km * 1000.0);
    let end = gc_destination(&pb, gc_initial_bearing_deg(&pb, &pa), spec.tail_km * 1000.0);

    let mut graph: Graph<Tower, MwLink> = Graph::new();
    let add = |graph: &mut Graph<Tower, MwLink>, p: LatLon| -> NodeId {
        graph.add_node(Tower {
            position: p,
            cell: snap.snap(&p),
            ground_elevation_m: 230.0,
            structure_height_m: 110.0,
        })
    };
    let link = |graph: &mut Graph<Tower, MwLink>, u: NodeId, v: NodeId, ghz: f64| {
        let d = graph
            .node(u)
            .position
            .geodesic_distance_m(&graph.node(v).position);
        graph.add_edge(
            u,
            v,
            MwLink {
                length_m: d,
                frequencies_ghz: vec![ghz],
                licenses: vec![],
            },
        );
    };

    // Primary chain on the geodesic.
    let n = spec.primary_towers;
    let primary: Vec<NodeId> = (0..n)
        .map(|i| {
            add(
                &mut graph,
                gc_interpolate(&start, &end, i as f64 / (n - 1) as f64),
            )
        })
        .collect();
    for w in primary.windows(2) {
        link(&mut graph, w[0], w[1], spec.primary_ghz);
    }

    // Rail over the protected prefix of links (starting mid-corridor
    // outward would work too; contiguity maximizes APA per rail tower).
    let protected_links = ((n - 1) as f64 * spec.protected_fraction).round() as usize;
    if protected_links > 0 {
        let lo = 0;
        let hi = protected_links.min(n - 1);
        let run_len_m: f64 = (lo..hi)
            .map(|i| {
                graph
                    .node(primary[i])
                    .position
                    .geodesic_distance_m(&graph.node(primary[i + 1]).position)
            })
            .sum();
        let rail_hops = (run_len_m / (spec.rail_hop_km * 1000.0)).round().max(1.0) as usize;
        let run_start = graph.node(primary[lo]).position;
        let run_end = graph.node(primary[hi]).position;
        let bearing = gc_initial_bearing_deg(&run_start, &run_end);
        let mut prev = primary[lo];
        for k in 1..rail_hops {
            let on_line = gc_interpolate(&run_start, &run_end, k as f64 / rail_hops as f64);
            let p = gc_destination(&on_line, bearing + 90.0, spec.rail_offset_km * 1000.0);
            let node = add(&mut graph, p);
            link(&mut graph, prev, node, spec.rail_ghz);
            prev = node;
        }
        link(&mut graph, prev, primary[hi], spec.rail_ghz);
    }

    Network {
        licensee: "designed".into(),
        as_of: Date::new(2020, 4, 1).expect("static"),
        graph,
    }
}

/// Verification report for a designed network, measured with the same
/// code the paper's analysis uses on the HFT incumbents.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// End-to-end latency, ms.
    pub latency_ms: f64,
    /// Stretch versus the c-bound along the corridor geodesic.
    pub stretch: f64,
    /// Alternate path availability.
    pub apa: f64,
    /// Total towers built (cost proxy).
    pub towers: usize,
    /// Whether a fully edge-disjoint standby path exists, and its latency
    /// penalty versus the primary (ms) when it does.
    pub disjoint_standby_penalty_ms: Option<f64>,
}

/// Measure a designed (or any) network between two data centers.
pub fn evaluate(network: &Network, a: &DataCenter, b: &DataCenter) -> Option<DesignReport> {
    let rg = RoutingGraph::build(network, a, b);
    let r = route(network, a, b)?;
    let apa = metrics::apa(network, a, b)?;
    let disjoint = disjoint_shortest_pair(&rg.graph, rg.source, rg.target, |_, e| e.latency_s())
        .map(|pair| (pair.second_cost - pair.first_cost) * 1e3);
    Some(DesignReport {
        latency_ms: r.latency_ms,
        stretch: r.stretch_vs_c(rg.geodesic_m),
        apa,
        towers: network.tower_count(),
        disjoint_standby_penalty_ms: disjoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corridor::{CME, EQUINIX_NY4};

    #[test]
    fn default_design_is_fast_and_fully_protected() {
        let net = design_corridor(&CME, &EQUINIX_NY4, &DesignSpec::default());
        let rep = evaluate(&net, &CME, &EQUINIX_NY4).expect("connected");
        assert!(
            rep.stretch < 1.002,
            "straight chain + fiber tails: stretch {}",
            rep.stretch
        );
        assert!(rep.apa > 0.95, "fully railed: APA {}", rep.apa);
        // Full edge-disjointness extends to the data-center fiber tails:
        // the standby cannot reuse the primary's tail edge, so it enters
        // the rail through a longer fiber lateral — the dominant part of
        // its penalty (~0.12 ms here). A deployment wanting cheap standby
        // would provision a second short tail; the metric makes that
        // trade visible.
        let penalty = rep
            .disjoint_standby_penalty_ms
            .expect("disjoint standby exists");
        assert!(
            penalty > 0.0 && penalty < 0.3,
            "standby within 300 µs: {penalty}"
        );
    }

    #[test]
    fn unprotected_design_has_zero_apa_and_no_standby() {
        let spec = DesignSpec {
            protected_fraction: 0.0,
            ..Default::default()
        };
        let net = design_corridor(&CME, &EQUINIX_NY4, &spec);
        let rep = evaluate(&net, &CME, &EQUINIX_NY4).unwrap();
        assert_eq!(rep.apa, 0.0);
        assert!(rep.disjoint_standby_penalty_ms.is_none());
    }

    #[test]
    fn apa_scales_with_protected_fraction() {
        let mut prev = -1.0;
        for f in [0.0, 0.3, 0.6, 1.0] {
            let spec = DesignSpec {
                protected_fraction: f,
                ..Default::default()
            };
            let net = design_corridor(&CME, &EQUINIX_NY4, &spec);
            let rep = evaluate(&net, &CME, &EQUINIX_NY4).unwrap();
            assert!(
                rep.apa >= prev - 0.05,
                "APA must grow with protection: {f} -> {}",
                rep.apa
            );
            assert!(
                (rep.apa - f).abs() < 0.1,
                "APA ≈ protected fraction: {f} -> {}",
                rep.apa
            );
            prev = rep.apa;
        }
    }

    #[test]
    fn tower_budget_tradeoff() {
        // Fewer towers = longer links = cheaper; latency stays ~constant
        // on a straight design, so the tradeoff shows up in tower count.
        let lean = DesignSpec {
            primary_towers: 15,
            protected_fraction: 0.0,
            ..Default::default()
        };
        let dense = DesignSpec {
            primary_towers: 40,
            protected_fraction: 0.0,
            ..Default::default()
        };
        let rl = evaluate(
            &design_corridor(&CME, &EQUINIX_NY4, &lean),
            &CME,
            &EQUINIX_NY4,
        )
        .unwrap();
        let rd = evaluate(
            &design_corridor(&CME, &EQUINIX_NY4, &dense),
            &CME,
            &EQUINIX_NY4,
        )
        .unwrap();
        assert!(rl.towers < rd.towers / 2);
        assert!((rl.latency_ms - rd.latency_ms).abs() < 0.002);
    }

    #[test]
    fn rails_use_the_low_band() {
        let net = design_corridor(&CME, &EQUINIX_NY4, &DesignSpec::default());
        let mut low = 0;
        let mut high = 0;
        for (_, _, _, l) in net.graph.edges() {
            if l.frequencies_ghz[0] < 7.0 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(
            low > 0 && high > 0,
            "both bands present: {low} low / {high} high"
        );
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn rejects_degenerate_budget() {
        let spec = DesignSpec {
            primary_towers: 2,
            ..Default::default()
        };
        design_corridor(&CME, &EQUINIX_NY4, &spec);
    }
}
