//! Per-tower processing overhead analysis (§3 of the paper).
//!
//! The paper's distance-only latency model ignores signal
//! repetition/regeneration delay at towers, then observes: "Jefferson
//! Microwave has the fewest towers (22) along the shortest path [...] if
//! the per-tower added latency was higher than 1.4 µs, JM would offer
//! lower end-end latency" than New Line Networks (25 towers). This module
//! makes per-tower overhead a first-class parameter and finds such
//! crossovers.

use crate::corridor::DataCenter;
use crate::network::Network;
use crate::route::{route, Route};

/// A network's latency under a per-tower overhead model.
#[derive(Debug, Clone)]
pub struct OverheadAdjusted {
    /// Licensee name.
    pub licensee: String,
    /// The distance-only route.
    pub route: Route,
    /// Total latency including `towers × overhead`, ms.
    pub adjusted_ms: f64,
}

/// Adjusted one-way latency: propagation plus `per_tower_us` microseconds
/// at each tower traversed.
pub fn adjusted_latency_ms(route: &Route, per_tower_us: f64) -> f64 {
    route.latency_ms + route.towers as f64 * per_tower_us / 1000.0
}

/// Rank networks under a per-tower overhead assumption.
///
/// Takes `(name, network)` pairs, returns adjusted entries sorted by
/// adjusted latency; unconnected networks are dropped.
pub fn rank_with_overhead(
    networks: &[(String, &Network)],
    a: &DataCenter,
    b: &DataCenter,
    per_tower_us: f64,
) -> Vec<OverheadAdjusted> {
    let mut out: Vec<OverheadAdjusted> = networks
        .iter()
        .filter_map(|(name, net)| {
            route(net, a, b).map(|r| OverheadAdjusted {
                licensee: name.clone(),
                adjusted_ms: adjusted_latency_ms(&r, per_tower_us),
                route: r,
            })
        })
        .collect();
    out.sort_by(|x, y| {
        x.adjusted_ms
            .partial_cmp(&y.adjusted_ms)
            .expect("finite latencies")
    });
    out
}

/// The per-tower overhead (µs) at which network `b` starts beating
/// network `a`, if any: solves
/// `lat_a + towers_a·o = lat_b + towers_b·o`.
///
/// Returns `None` when `b` never catches up (it has at least as many
/// towers and higher latency) or when either network is unconnected.
pub fn crossover_overhead_us(
    a: &Network,
    b: &Network,
    from: &DataCenter,
    to: &DataCenter,
) -> Option<f64> {
    let ra = route(a, from, to)?;
    let rb = route(b, from, to)?;
    let dlat_us = (rb.latency_ms - ra.latency_ms) * 1000.0;
    let dtowers = ra.towers as f64 - rb.towers as f64;
    if dtowers <= 0.0 {
        // b does not save towers; it can only catch up if already faster.
        return (dlat_us < 0.0).then_some(0.0);
    }
    let o = dlat_us / dtowers;
    (o >= 0.0).then_some(o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corridor::{CME, EQUINIX_NY4};
    use crate::network::{MwLink, Tower};
    use hft_geodesy::{gc_interpolate, SnapGrid};
    use hft_netgraph::{Graph, NodeId};
    use hft_time::Date;

    /// Chain of `n` towers with a given extra path stretch (µs of wiggle
    /// emulated by inflating link lengths is unnecessary — we only need
    /// distinct tower counts, so a straight chain suffices).
    fn chain(n: usize, name: &str) -> Network {
        let a = CME.position();
        let b = EQUINIX_NY4.position();
        let mut graph = Graph::new();
        let snap = SnapGrid::arc_second();
        let mut prev: Option<NodeId> = None;
        for i in 0..n {
            let t = 0.002 + (i as f64 / (n - 1) as f64) * 0.996;
            let position = gc_interpolate(&a, &b, t);
            let node = graph.add_node(Tower {
                position,
                cell: snap.snap(&position),
                ground_elevation_m: 230.0,
                structure_height_m: 110.0,
            });
            if let Some(p) = prev {
                let length_m = graph.node(p).position.geodesic_distance_m(&position);
                graph.add_edge(
                    p,
                    node,
                    MwLink {
                        length_m,
                        frequencies_ghz: vec![11.2],
                        licenses: vec![],
                    },
                );
            }
            prev = Some(node);
        }
        Network {
            licensee: name.into(),
            as_of: Date::new(2020, 4, 1).unwrap(),
            graph,
        }
    }

    #[test]
    fn zero_overhead_preserves_distance_ranking() {
        let many = chain(30, "many");
        let few = chain(20, "few");
        let nets = vec![("many".to_string(), &many), ("few".to_string(), &few)];
        let ranked = rank_with_overhead(&nets, &CME, &EQUINIX_NY4, 0.0);
        assert_eq!(ranked.len(), 2);
        // Straight chains: nearly identical latency; ranking by tiny
        // differences is fine — just check adjusted == base at 0 overhead.
        for r in &ranked {
            assert!((r.adjusted_ms - r.route.latency_ms).abs() < 1e-12);
        }
    }

    #[test]
    fn heavy_overhead_favors_fewer_towers() {
        let many = chain(30, "many");
        let few = chain(20, "few");
        let nets = vec![("many".to_string(), &many), ("few".to_string(), &few)];
        let ranked = rank_with_overhead(&nets, &CME, &EQUINIX_NY4, 5.0);
        assert_eq!(ranked[0].licensee, "few");
        // 10 fewer towers × 5 µs = 50 µs advantage dominates path noise.
        assert!(ranked[1].adjusted_ms - ranked[0].adjusted_ms > 0.040);
    }

    #[test]
    fn crossover_solves_linear_equation() {
        let many = chain(30, "many"); // lower distance latency? both straight
        let few = chain(20, "few");
        // Force `many` to be distance-faster by checking actual routes.
        let rm = route(&many, &CME, &EQUINIX_NY4).unwrap();
        let rf = route(&few, &CME, &EQUINIX_NY4).unwrap();
        let (fast, slow, dlat, dtow) = if rm.latency_ms < rf.latency_ms {
            (
                &many,
                &few,
                (rf.latency_ms - rm.latency_ms) * 1000.0,
                rm.towers - rf.towers,
            )
        } else {
            (
                &few,
                &many,
                (rm.latency_ms - rf.latency_ms) * 1000.0,
                rf.towers as isize as usize,
            )
        };
        if rm.latency_ms < rf.latency_ms && rm.towers > rf.towers {
            let o = crossover_overhead_us(fast, slow, &CME, &EQUINIX_NY4).unwrap();
            assert!((o - dlat / dtow as f64).abs() < 1e-9);
            // At crossover + ε the slow-but-lean network wins.
            let at = |net: &Network, ov: f64| {
                adjusted_latency_ms(&route(net, &CME, &EQUINIX_NY4).unwrap(), ov)
            };
            assert!(at(slow, o + 0.01) < at(fast, o + 0.01));
            assert!(at(slow, (o - 0.01).max(0.0)) >= at(fast, (o - 0.01).max(0.0)) - 1e-9);
        }
        let _ = dtow;
    }

    #[test]
    fn no_crossover_when_fewer_towers_and_faster() {
        let few = chain(20, "few");
        let many = chain(30, "many");
        let rf = route(&few, &CME, &EQUINIX_NY4).unwrap();
        let rm = route(&many, &CME, &EQUINIX_NY4).unwrap();
        if rf.latency_ms < rm.latency_ms {
            // `many` never beats `few`: more towers AND slower.
            assert_eq!(crossover_overhead_us(&few, &many, &CME, &EQUINIX_NY4), None);
        }
    }
}
