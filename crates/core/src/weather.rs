//! The §5 reliability argument as a runnable experiment.
//!
//! The paper *argues* that Webline Holdings survives against faster
//! competitors because its shorter links, lower frequencies and higher
//! APA make it more reliable: "one network may be able to dominate
//! another in fair weather, but a more reliable network may be faster at
//! other times." This module quantifies that claim: sample corridor
//! weather states, fail the links whose rain attenuation exceeds their
//! fade margin, and recompute each network's conditional latency.

use crate::corridor::DataCenter;
use crate::route::RoutingGraph;
use crate::Network;
use hft_geodesy::gc_initial_bearing_deg;
use hft_radio::{LinkOutageModel, WeatherSampler};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Distribution summary of a network's latency across weather states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherOutcome {
    /// Clear-sky latency, ms.
    pub clear_ms: f64,
    /// Median conditional latency, ms (disconnected samples count as ∞).
    pub p50_ms: f64,
    /// 95th-percentile conditional latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile conditional latency, ms.
    pub p99_ms: f64,
    /// Fraction of weather states in which the network stays connected.
    pub availability: f64,
    /// Number of sampled weather states.
    pub samples: usize,
}

/// Run the weather Monte Carlo for `network` between two data centers.
///
/// Each sample draws a corridor weather state from `sampler`; every
/// microwave link whose rain attenuation (at its length and lowest
/// authorized frequency) exceeds its clear-air fade margin is removed,
/// and the route re-solved. Deterministic in `seed`.
pub fn conditional_latency(
    network: &Network,
    a: &DataCenter,
    b: &DataCenter,
    sampler: &WeatherSampler,
    samples: usize,
    seed: u64,
) -> Option<WeatherOutcome> {
    conditional_latency_on(
        &RoutingGraph::build(network, a, b),
        network,
        a,
        b,
        sampler,
        samples,
        seed,
    )
}

/// [`conditional_latency`] over a pre-built routing graph, so callers
/// holding a cached graph (e.g. an analysis session) skip the rebuild.
/// `rg` must have been built for `network` between `a` and `b`.
///
/// The entire Monte Carlo is a pure function of `seed`: the RNG is
/// constructed here from the seed and threaded explicitly through
/// [`conditional_latency_rng`] — no ambient entropy anywhere — so two
/// runs with the same inputs are bit-identical.
pub fn conditional_latency_on(
    rg: &RoutingGraph,
    network: &Network,
    a: &DataCenter,
    b: &DataCenter,
    sampler: &WeatherSampler,
    samples: usize,
    seed: u64,
) -> Option<WeatherOutcome> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    conditional_latency_rng(rg, network, a, b, sampler, samples, &mut rng)
}

/// [`conditional_latency_on`] with the weather-state RNG threaded in by
/// the caller, for composing the MC into a larger deterministic
/// experiment (one seeded stream shared across several runs).
pub fn conditional_latency_rng<R: Rng + ?Sized>(
    rg: &RoutingGraph,
    network: &Network,
    a: &DataCenter,
    b: &DataCenter,
    sampler: &WeatherSampler,
    samples: usize,
    rng: &mut R,
) -> Option<WeatherOutcome> {
    let clear = rg.route_filtered(network, |_| true)?;

    // Pre-compute each link's outage model and corridor position
    // (fraction of the way from `a` to `b`, by projection onto the
    // corridor axis).
    let a_pos = a.position();
    let b_pos = b.position();
    let corridor_len = a_pos.geodesic_distance_m(&b_pos);
    let corridor_bearing = gc_initial_bearing_deg(&a_pos, &b_pos).to_radians();
    let links: Vec<(hft_netgraph::EdgeId, LinkOutageModel, f64)> = network
        .graph
        .edges()
        .map(|(e, u, v, link)| {
            let mid_u = network.graph.node(u).position;
            let mid_v = network.graph.node(v).position;
            // Project the link midpoint onto the corridor axis.
            let d = a_pos
                .geodesic_distance_m(&mid_u)
                .min(a_pos.geodesic_distance_m(&mid_v));
            let x = (d / corridor_len).clamp(0.0, 1.0);
            let freq = link
                .frequencies_ghz
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            let freq = if freq.is_finite() { freq } else { 11.0 };
            (e, LinkOutageModel::typical(link.length_m / 1000.0, freq), x)
        })
        .collect();
    let _ = corridor_bearing;

    let mut latencies: Vec<f64> = Vec::with_capacity(samples);
    let mut connected = 0usize;
    for _ in 0..samples {
        let state = sampler.sample(rng);
        let latency = match state {
            None => Some(clear.latency_ms),
            Some(event) => {
                let mut down = std::collections::HashSet::new();
                for (e, model, x) in &links {
                    let rain = event.rain_at(*x);
                    if rain > 0.0 && !model.up_under_rain(rain) {
                        down.insert(*e);
                    }
                }
                if down.is_empty() {
                    Some(clear.latency_ms)
                } else {
                    rg.route_filtered(network, |e| !down.contains(&e))
                        .map(|r| r.latency_ms)
                }
            }
        };
        match latency {
            Some(ms) => {
                connected += 1;
                latencies.push(ms);
            }
            None => latencies.push(f64::INFINITY),
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("INF sorts fine"));
    let q = |p: f64| latencies[((p * samples as f64) as usize).min(samples - 1)];
    Some(WeatherOutcome {
        clear_ms: clear.latency_ms,
        p50_ms: q(0.50),
        p95_ms: q(0.95),
        p99_ms: q(0.99),
        availability: connected as f64 / samples as f64,
        samples,
    })
}

/// The §5 closing thought, quantified: "The most competitive trading
/// firms may even use a combination of both services to maintain their
/// advantage in varied conditions." Evaluates a *portfolio* of networks
/// against one shared sequence of weather states, taking the best
/// available latency in each state.
pub fn portfolio_latency(
    networks: &[&Network],
    a: &DataCenter,
    b: &DataCenter,
    sampler: &WeatherSampler,
    samples: usize,
    seed: u64,
) -> Option<WeatherOutcome> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    portfolio_latency_rng(networks, a, b, sampler, samples, &mut rng)
}

/// [`portfolio_latency`] with the RNG threaded in by the caller (same
/// contract as [`conditional_latency_rng`]: no ambient entropy).
pub fn portfolio_latency_rng<R: Rng + ?Sized>(
    networks: &[&Network],
    a: &DataCenter,
    b: &DataCenter,
    sampler: &WeatherSampler,
    samples: usize,
    rng: &mut R,
) -> Option<WeatherOutcome> {
    if networks.is_empty() {
        return None;
    }
    struct Member {
        rg: RoutingGraph,
        clear_ms: f64,
        links: Vec<(hft_netgraph::EdgeId, LinkOutageModel, f64)>,
    }
    let a_pos = a.position();
    let b_pos = b.position();
    let corridor_len = a_pos.geodesic_distance_m(&b_pos);
    let mut members = Vec::new();
    for net in networks {
        let rg = RoutingGraph::build(net, a, b);
        let clear = rg.route_filtered(net, |_| true)?;
        let links = net
            .graph
            .edges()
            .map(|(e, u, v, link)| {
                let d = a_pos
                    .geodesic_distance_m(&net.graph.node(u).position)
                    .min(a_pos.geodesic_distance_m(&net.graph.node(v).position));
                let x = (d / corridor_len).clamp(0.0, 1.0);
                let freq = link
                    .frequencies_ghz
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min);
                let freq = if freq.is_finite() { freq } else { 11.0 };
                (e, LinkOutageModel::typical(link.length_m / 1000.0, freq), x)
            })
            .collect();
        members.push(Member {
            rg,
            clear_ms: clear.latency_ms,
            links,
        });
    }

    let mut latencies = Vec::with_capacity(samples);
    let mut connected = 0usize;
    for _ in 0..samples {
        let state = sampler.sample(rng);
        let mut best = f64::INFINITY;
        for (net, m) in networks.iter().zip(&members) {
            let ms = match &state {
                None => Some(m.clear_ms),
                Some(event) => {
                    let down: std::collections::HashSet<_> = m
                        .links
                        .iter()
                        .filter(|(_, model, x)| {
                            let rain = event.rain_at(*x);
                            rain > 0.0 && !model.up_under_rain(rain)
                        })
                        .map(|(e, _, _)| *e)
                        .collect();
                    if down.is_empty() {
                        Some(m.clear_ms)
                    } else {
                        m.rg.route_filtered(net, |e| !down.contains(&e))
                            .map(|r| r.latency_ms)
                    }
                }
            };
            if let Some(ms) = ms {
                best = best.min(ms);
            }
        }
        if best.is_finite() {
            connected += 1;
        }
        latencies.push(best);
    }
    latencies.sort_by(|x, y| x.partial_cmp(y).expect("INF sorts fine"));
    let q = |p: f64| latencies[((p * samples as f64) as usize).min(samples - 1)];
    Some(WeatherOutcome {
        clear_ms: members
            .iter()
            .map(|m| m.clear_ms)
            .fold(f64::INFINITY, f64::min),
        p50_ms: q(0.50),
        p95_ms: q(0.95),
        p99_ms: q(0.99),
        availability: connected as f64 / samples as f64,
        samples,
    })
}
