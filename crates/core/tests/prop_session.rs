//! Property tests for the session engine: for *arbitrary* as-of dates,
//! the epoch-cached [`AnalysisSession`] answers must equal a direct
//! `reconstruct`/`route` on the same corpus — the cache may only ever
//! change the cost of a query, never its value.

use hft_core::corridor::{CME, EQUINIX_NY4};
use hft_core::reconstruct::ReconstructOptions;
use hft_core::session::AnalysisSession;
use hft_core::{reconstruct, route};
use hft_geodesy::gc_interpolate;
use hft_time::Date;
use hft_uls::{
    CallSign, FrequencyAssignment, License, LicenseId, MicrowavePath, RadioService, StationClass,
    TowerSite,
};
use proptest::prelude::*;

/// One license per hop of a straight CME→NY4 chain, granted on `grant`
/// and optionally cancelled on `cancel`.
fn chain_licenses(
    licensee: &str,
    grant: Date,
    cancel: Option<Date>,
    n: usize,
    base_id: u64,
) -> Vec<License> {
    let a = CME.position();
    let b = EQUINIX_NY4.position();
    let pos = |i: usize| gc_interpolate(&a, &b, 0.004 + (i as f64 / (n - 1) as f64) * 0.992);
    (0..n - 1)
        .map(|i| License {
            id: LicenseId(base_id + i as u64),
            call_sign: CallSign(format!("WQ{:05}", base_id + i as u64)),
            licensee: licensee.into(),
            service: RadioService::MG,
            station_class: StationClass::FXO,
            grant_date: grant,
            termination_date: None,
            cancellation_date: cancel,
            paths: vec![MicrowavePath {
                tx: TowerSite::at(pos(i)),
                rx: TowerSite::at(pos(i + 1)),
                frequencies: vec![FrequencyAssignment { center_hz: 6.1e9 }],
            }],
        })
        .collect()
}

/// (year, month, day) triples constrained to always form a valid date.
fn date_parts() -> impl Strategy<Value = Date> {
    (2012i32..=2022, 1u32..=12, 1u32..=28).prop_map(|(y, m, d)| Date::new(y, m, d).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A session-cached snapshot equals a direct reconstruction for any
    /// grant/cancel lifecycle and any sequence of query dates — including
    /// dates that land exactly on the lifecycle events.
    #[test]
    fn cached_network_equals_direct_reconstruct(
        grant in date_parts(),
        cancel in proptest::option::of(date_parts()),
        queries in proptest::collection::vec(date_parts(), 1..8),
    ) {
        // Only keep cancellations after the grant; earlier ones are
        // rejected by the generator upstream and never occur in a corpus.
        let cancel = cancel.filter(|c| *c > grant);
        let lics = chain_licenses("Prop Net", grant, cancel, 12, 1);
        let refs: Vec<&License> = lics.iter().collect();
        let session = AnalysisSession::over(lics.iter());
        let opts = ReconstructOptions::default();

        // Hit the cache in query order, plus the event dates themselves
        // (epoch boundaries — the off-by-one hot spots).
        let mut dates = queries.clone();
        dates.push(grant);
        if let Some(c) = cancel {
            dates.push(c);
        }
        for date in dates {
            let direct = reconstruct(&refs, "Prop Net", date, &opts);
            let cached = session.network_at("Prop Net", date);
            prop_assert_eq!(cached.as_of, direct.as_of);
            prop_assert_eq!(cached.tower_count(), direct.tower_count());
            prop_assert_eq!(cached.link_count(), direct.link_count());

            let direct_route = route(&direct, &CME, &EQUINIX_NY4);
            let cached_route = session.route("Prop Net", date, &CME, &EQUINIX_NY4);
            match (direct_route, cached_route) {
                (None, None) => {}
                (Some(d), Some(c)) => {
                    prop_assert_eq!(d.latency_ms.to_bits(), c.latency_ms.to_bits());
                    prop_assert_eq!(d.towers, c.towers);
                }
                (d, c) => prop_assert!(false, "connectivity differs: {:?} vs {:?}", d.is_some(), c.is_some()),
            }
        }
    }

    /// Equal epochs share one snapshot; the session never reconstructs
    /// more often than the licensee has distinct epochs.
    #[test]
    fn reconstruction_count_bounded_by_epochs(
        grant in date_parts(),
        cancel in proptest::option::of(date_parts()),
        queries in proptest::collection::vec(date_parts(), 1..12),
    ) {
        let cancel = cancel.filter(|c| *c > grant);
        let lics = chain_licenses("Prop Net", grant, cancel, 6, 1);
        let session = AnalysisSession::over(lics.iter());
        for date in &queries {
            session.network("Prop Net", *date);
        }
        let epochs = session.index().epoch_count("Prop Net") as u64;
        let stats = session.stats();
        prop_assert!(
            stats.reconstructions <= epochs,
            "{} reconstructions for {} epochs",
            stats.reconstructions,
            epochs
        );
        prop_assert_eq!(stats.reconstructions + stats.network_hits, queries.len() as u64);

        // And queries with equal epochs returned the very same Arc.
        for w in queries.windows(2) {
            if session.epoch("Prop Net", w[0]) == session.epoch("Prop Net", w[1]) {
                let a = session.network("Prop Net", w[0]);
                let b = session.network("Prop Net", w[1]);
                prop_assert!(std::sync::Arc::ptr_eq(&a, &b));
            }
        }
    }
}
