//! Robustness fuzzing for the YAML network parser: arbitrary or mutated
//! input must return a structured error, never panic.

use hft_core::network::{MwLink, Network, Tower};
use hft_core::yaml::{from_yaml, to_yaml};
use hft_geodesy::{LatLon, SnapGrid};
use hft_netgraph::Graph;
use hft_time::Date;
use proptest::prelude::*;

fn sample() -> Network {
    let mut graph: Graph<Tower, MwLink> = Graph::new();
    let snap = SnapGrid::arc_second();
    let p1 = LatLon::new(41.7625, -88.1712).unwrap();
    let p2 = LatLon::new(41.7000, -87.6000).unwrap();
    let a = graph.add_node(Tower {
        position: p1,
        cell: snap.snap(&p1),
        ground_elevation_m: 230.0,
        structure_height_m: 110.0,
    });
    let b = graph.add_node(Tower {
        position: p2,
        cell: snap.snap(&p2),
        ground_elevation_m: 220.0,
        structure_height_m: 95.0,
    });
    graph.add_edge(
        a,
        b,
        MwLink {
            length_m: p1.geodesic_distance_m(&p2),
            frequencies_ghz: vec![11.245],
            licenses: vec![],
        },
    );
    Network {
        licensee: "Robust Net".into(),
        as_of: Date::new(2020, 4, 1).unwrap(),
        graph,
    }
}

fn mutate(text: &str, kind: u8, pos: usize, payload: char) -> String {
    let mut s: Vec<char> = text.chars().collect();
    if s.is_empty() {
        return payload.to_string();
    }
    let pos = pos % s.len();
    match kind % 3 {
        0 => s[pos] = payload,
        1 => s.insert(pos, payload),
        _ => {
            s.remove(pos);
        }
    }
    s.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn mutated_yaml_never_panics(kind in 0u8..3, pos in 0usize..100_000, payload in proptest::char::any()) {
        let text = to_yaml(&sample());
        let _ = from_yaml(&mutate(&text, kind, pos, payload));
    }

    #[test]
    fn arbitrary_text_never_panics(text in "\\PC{0,300}") {
        let _ = from_yaml(&text);
    }

    #[test]
    fn arbitrary_keyvalue_lines_never_panic(
        lines in proptest::collection::vec(("[a-z_]{1,12}", "[-0-9a-zA-Z. \\[\\],]{0,20}"), 0..10)
    ) {
        let text: String = lines.iter().map(|(k, v)| format!("{k}: {v}\n")).collect();
        let _ = from_yaml(&text);
        // And indented versions.
        let indented: String = lines.iter().map(|(k, v)| format!("  - {k}: {v}\n")).collect();
        let _ = from_yaml(&format!("licensee: x\nas_of: 2020-04-01\ntowers:\n{indented}"));
    }
}
