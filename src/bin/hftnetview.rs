//! The `hftnetview` command-line tool: regenerate any table or figure of
//! the paper from the (simulated) ULS corpus, export datasets, and dump
//! reconstructed networks.
//!
//! ```text
//! hftnetview <command> [--seed N] [--out DIR]
//!
//! commands:
//!   funnel      §2.2 scrape-pipeline counts (57 → 29)
//!   table1      connected networks, latency/APA/towers
//!   table2      top-3 networks per corridor path
//!   table3      APA: New Line Networks vs Webline Holdings
//!   fig1        latency evolution 2013–2020 (SVG + CSV)
//!   fig2        active licenses over time (SVG + CSV)
//!   fig3        NLN network maps 2016 vs 2020 (GeoJSON + SVG)
//!   fig4a       link-length CDFs (SVG + CSV)
//!   fig4b       frequency CDFs (SVG + CSV)
//!   fig5        LEO vs microwave vs fiber comparison
//!   weather     §5 conditional-latency Monte Carlo
//!   race        cross-substrate latency race + stretch-CDF figure
//!   entity      complementary-link entity-resolution scan (§6)
//!   overhead    per-tower overhead crossover analysis (§3)
//!   export      dump the license corpus as a ULS-style flat file
//!   yaml NAME   dump one licensee's 2020-04-01 network as YAML
//!   serve       run the concurrent query service over TCP
//!   trace       pull captured traces from a running server
//!               (--connect HOST:PORT [--id HEX] [--limit N])
//!   ingest      replay the corpus's 2013–2020 event history as daily
//!               transaction dumps with yearly checkpoint verification
//!   metrics     run a representative query mix and dump the telemetry
//!               registry (JSON, or Prometheus text with --prom)
//!   all         everything above (except serve/ingest/metrics),
//!               written to --out
//! ```
//!
//! `serve` takes `--port` (default 4710; 0 picks a free port),
//! `--workers` and `--queue-depth`, answers the hft-serve wire protocol
//! (with `--http PORT`, also the hft-http corpus explorer and live
//! dashboards on a second listener sharing the same evented loop)
//! until a `shutdown` request arrives, then dumps the serving counters
//! as JSON on stdout. With `--shards N` (N > 1) the corpus is
//! partitioned across N in-process shard workers behind a scatter-gather
//! router (`--strategy licensee|spatial` picks the partitioner); answers
//! are byte-identical to the single-corpus server's. With `--follow DIR`
//! it starts from an **empty** corpus instead of the generated one and
//! tails `DIR` for transaction dumps, publishing a new corpus generation
//! per ingested batch (per shard, in lockstep, when sharded) while
//! queries keep answering. With `--trace-sample N` one request in N is
//! head-sampled into the flight recorder (1 = every request; slow
//! requests are always captured); `trace --connect` pulls the recorded
//! waterfalls back out. With `--metrics-interval SECS` a background
//! thread dumps the full telemetry registry every interval — atomically
//! to `--metrics-out PATH`, or to stderr — and drains the slow-query
//! log to stderr. Any analysis command accepts `--stats` to print the
//! session's cache counters as JSON after the run.
//!
//! `ingest` renders the generated corpus's full event history as daily
//! dump files under `--out DIR/dumps`, replays them through the
//! incremental applier, and at every yearly checkpoint verifies the
//! incrementally maintained database against a from-scratch rebuild —
//! including byte-identical YAML network reconstructions against the
//! omniscient generated corpus.

use hftnetview::prelude::*;
use hftnetview::{report, weather};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    command: String,
    name: Option<String>,
    seed: u64,
    out: PathBuf,
    port: u16,
    workers: usize,
    queue_depth: usize,
    stats: bool,
    http: Option<u16>,
    follow: Option<PathBuf>,
    metrics_interval: Option<u64>,
    metrics_out: Option<PathBuf>,
    prom: bool,
    shards: usize,
    strategy: hft_uls::ShardStrategy,
    io: hft_serve::IoMode,
    trace_sample: Option<u64>,
    connect: Option<String>,
    id: Option<u128>,
    limit: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut parsed = Args {
        command,
        name: None,
        seed: 2020,
        out: PathBuf::from("out"),
        port: 4710,
        workers: 4,
        queue_depth: 64,
        stats: false,
        http: None,
        follow: None,
        metrics_interval: None,
        metrics_out: None,
        prom: false,
        shards: 1,
        strategy: hft_uls::ShardStrategy::LicenseeHash,
        io: hft_serve::IoMode::default(),
        trace_sample: None,
        connect: None,
        id: None,
        limit: 10,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                parsed.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--out" => {
                parsed.out = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--port" => {
                let v = args.next().ok_or("--port needs a value")?;
                parsed.port = v.parse().map_err(|_| format!("bad port {v:?}"))?;
            }
            "--workers" => {
                let v = args.next().ok_or("--workers needs a value")?;
                parsed.workers = v.parse().map_err(|_| format!("bad worker count {v:?}"))?;
            }
            "--queue-depth" => {
                let v = args.next().ok_or("--queue-depth needs a value")?;
                parsed.queue_depth = v.parse().map_err(|_| format!("bad queue depth {v:?}"))?;
            }
            "--stats" => parsed.stats = true,
            "--http" => {
                let v = args.next().ok_or("--http needs a value")?;
                parsed.http = Some(v.parse().map_err(|_| format!("bad http port {v:?}"))?);
            }
            "--follow" => {
                parsed.follow = Some(PathBuf::from(args.next().ok_or("--follow needs a value")?));
            }
            "--metrics-interval" => {
                let v = args.next().ok_or("--metrics-interval needs a value")?;
                let secs: u64 = v.parse().map_err(|_| format!("bad interval {v:?}"))?;
                if secs == 0 {
                    return Err("--metrics-interval must be at least 1 second".into());
                }
                parsed.metrics_interval = Some(secs);
            }
            "--metrics-out" => {
                parsed.metrics_out = Some(PathBuf::from(
                    args.next().ok_or("--metrics-out needs a value")?,
                ));
            }
            "--prom" => parsed.prom = true,
            "--shards" => {
                let v = args.next().ok_or("--shards needs a value")?;
                parsed.shards = v.parse().map_err(|_| format!("bad shard count {v:?}"))?;
                if parsed.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--strategy" => {
                let v = args.next().ok_or("--strategy needs a value")?;
                parsed.strategy = hft_uls::ShardStrategy::parse(&v)
                    .ok_or_else(|| format!("bad strategy {v:?} (licensee|spatial)"))?;
            }
            "--io" => {
                let v = args.next().ok_or("--io needs a value")?;
                parsed.io = hft_serve::IoMode::parse(&v)
                    .ok_or_else(|| format!("bad io mode {v:?} (evented|threaded)"))?;
            }
            "--trace-sample" => {
                let v = args.next().ok_or("--trace-sample needs a value")?;
                parsed.trace_sample =
                    Some(v.parse().map_err(|_| format!("bad trace sample {v:?}"))?);
            }
            "--connect" => {
                parsed.connect = Some(args.next().ok_or("--connect needs HOST:PORT")?);
            }
            "--id" => {
                let v = args.next().ok_or("--id needs a hex trace id")?;
                parsed.id =
                    Some(hft_obs::parse_trace_id(&v).ok_or_else(|| format!("bad trace id {v:?}"))?);
            }
            "--limit" => {
                let v = args.next().ok_or("--limit needs a value")?;
                parsed.limit = v.parse().map_err(|_| format!("bad limit {v:?}"))?;
            }
            other if parsed.name.is_none() && !other.starts_with('-') => {
                parsed.name = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(parsed)
}

fn usage() -> String {
    "usage: hftnetview <funnel|table1|table2|table3|fig1|fig2|fig3|fig4a|fig4b|fig5|weather|race|entity|overhead|export|yaml NAME|serve|trace|ingest|metrics|all> [--seed N] [--out DIR] [--stats] [--port N] [--http PORT] [--workers N] [--queue-depth N] [--shards N] [--strategy licensee|spatial] [--io evented|threaded] [--trace-sample N] [--follow DIR] [--metrics-interval SECS] [--metrics-out PATH] [--prom] [--connect HOST:PORT] [--id HEX] [--limit N]".to_string()
}

fn write(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(contents.as_bytes())?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    let io_err = |e: std::io::Error| e.to_string();
    if args.command == "trace" {
        return run_trace(args);
    }
    let eco = generate(&chicago_nj(), args.seed);
    if args.command == "serve" {
        if let Some(every) = args.trace_sample {
            hft_obs::set_trace_sample_every(every);
        }
        let server = hft_serve::Server::bind(hft_serve::ServeConfig {
            addr: format!("127.0.0.1:{}", args.port),
            workers: args.workers,
            queue_depth: args.queue_depth,
            io: args.io,
            ..hft_serve::ServeConfig::default()
        })
        .map_err(io_err)?;
        let addr = server.local_addr().map_err(io_err)?;
        let dumper = args
            .metrics_interval
            .map(|secs| spawn_metrics_dumper(secs, args.metrics_out.clone()));
        let served = if let Some(dir) = &args.follow {
            eprintln!(
                "live-serving on {addr}, following {} ({} workers, queue depth {}, {} shard(s), {} partitioning)",
                dir.display(),
                args.workers,
                args.queue_depth,
                args.shards,
                args.strategy.name(),
            );
            serve_follow(&server, dir, args.shards, args.strategy, args.http)
        } else if args.shards > 1 {
            eprintln!(
                "serving {} licenses on {addr} ({} workers, queue depth {}, {} shards, {} partitioning)",
                eco.db.len(),
                args.workers,
                args.queue_depth,
                args.shards,
                args.strategy.name(),
            );
            let fleet = hft_ingest::ShardedStore::seeded(&eco.db, args.shards, args.strategy, None);
            let router = hft_serve::ShardRouter::over(&fleet);
            run_serve(&server, &router, args.http)
        } else {
            eprintln!(
                "serving {} licenses on {addr} ({} workers, queue depth {})",
                eco.db.len(),
                args.workers,
                args.queue_depth
            );
            let service = hft_serve::Service::new(&eco.db);
            run_serve(&server, &service, args.http)
        };
        if let Some((stop, handle)) = dumper {
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let _ = handle.join();
        }
        let stats = served.map_err(io_err)?;
        println!("{}", stats.to_json().encode());
        return Ok(());
    }
    if args.command == "metrics" {
        return run_metrics(&eco, args.prom);
    }
    if args.command == "ingest" {
        return run_ingest(&eco, &args.out);
    }
    let analysis = report::Analysis::new(&eco);
    let out = &args.out;
    let run_one = |cmd: &str| -> Result<(), String> {
        match cmd {
            "funnel" => {
                print!("{}", report::funnel_render(&report::funnel(&analysis)));
            }
            "table1" => {
                let rows = report::table1(&analysis);
                let (text, csv) = report::table1_render(&rows);
                print!("{text}");
                write(&out.join("table1.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "table2" => {
                let t = report::table2(&analysis);
                let (text, csv) = report::table2_render(&t);
                print!("{text}");
                write(&out.join("table2.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "table3" => {
                let rows = report::table3(&analysis);
                let (text, csv) = report::table3_render(&rows);
                print!("{text}");
                write(&out.join("table3.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "fig1" => {
                let series = report::evolution(&analysis);
                let (svg, csv) = report::fig1_render(&series);
                write(&out.join("fig1.svg"), &svg).map_err(io_err)?;
                write(&out.join("fig1.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "fig2" => {
                let series = report::evolution(&analysis);
                let (svg, csv) = report::fig2_render(&series);
                write(&out.join("fig2.svg"), &svg).map_err(io_err)?;
                write(&out.join("fig2.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "fig3" => {
                let (gj16, gj20, svg16, svg20) = report::fig3(&analysis);
                write(&out.join("fig3_nln_2016.geojson"), &gj16).map_err(io_err)?;
                write(&out.join("fig3_nln_2020.geojson"), &gj20).map_err(io_err)?;
                write(&out.join("fig3_nln_2016.svg"), &svg16).map_err(io_err)?;
                write(&out.join("fig3_nln_2020.svg"), &svg20).map_err(io_err)?;
            }
            "fig4a" => {
                let cdfs = report::fig4a(&analysis);
                for (name, cdf) in &cdfs {
                    println!(
                        "{name}: median link length {:.1} km over {} links",
                        cdf.median(),
                        cdf.len()
                    );
                }
                let (svg, csv) = report::cdf_render("Fig 4a: link lengths", "Distance (km)", &cdfs);
                write(&out.join("fig4a.svg"), &svg).map_err(io_err)?;
                write(&out.join("fig4a.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "fig4b" => {
                let cdfs = report::fig4b(&analysis);
                for (name, cdf) in &cdfs {
                    println!(
                        "{name}: {:.0}% of frequencies under 7 GHz",
                        cdf.fraction_below(7.0) * 100.0
                    );
                }
                let (svg, csv) =
                    report::cdf_render("Fig 4b: operating frequencies", "Frequency (GHz)", &cdfs);
                write(&out.join("fig4b.svg"), &svg).map_err(io_err)?;
                write(&out.join("fig4b.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "fig5" => {
                let rows = report::fig5();
                let (text, csv) = report::fig5_render(&rows);
                print!("{text}");
                write(&out.join("fig5.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "weather" => {
                let sampler = hft_radio::WeatherSampler::stormy_season();
                println!("Conditional CME-NY4 latency under corridor weather (3000 states):");
                println!(
                    "{:<24} {:>9} {:>9} {:>9} {:>9} {:>7}",
                    "Licensee", "clear", "p50", "p95", "p99", "avail"
                );
                for name in ["New Line Networks", "Webline Holdings"] {
                    let asof = report::snapshot_date();
                    let net = analysis.session.network(name, asof);
                    let rg = analysis.session.routing_graph(
                        name,
                        asof,
                        &corridor::CME,
                        &corridor::EQUINIX_NY4,
                    );
                    let o = weather::conditional_latency_on(
                        &rg,
                        &net,
                        &corridor::CME,
                        &corridor::EQUINIX_NY4,
                        &sampler,
                        3000,
                        args.seed,
                    )
                    .ok_or_else(|| format!("{name}: no route"))?;
                    let p = |v: f64| {
                        if v.is_finite() {
                            format!("{v:.4}")
                        } else {
                            "down".to_string()
                        }
                    };
                    println!(
                        "{:<24} {:>9} {:>9} {:>9} {:>9} {:>6.1}%",
                        name,
                        p(o.clear_ms),
                        p(o.p50_ms),
                        p(o.p95_ms),
                        p(o.p99_ms),
                        o.availability * 100.0
                    );
                }
            }
            "race" => {
                let engine = hft_race::RaceEngine::new();
                let date = report::snapshot_date();
                println!(
                    "Cross-substrate latency race, CME -> NY4 as of {} (starlink-like LEO):",
                    date.to_iso()
                );
                let p = |v: Option<f64>| {
                    v.map(|x| format!("{x:.4}"))
                        .unwrap_or_else(|| "-".to_string())
                };
                for name in ["New Line Networks", "Webline Holdings"] {
                    let o = engine
                        .race(
                            &analysis.session,
                            name,
                            date,
                            &corridor::CME,
                            &corridor::EQUINIX_NY4,
                            "starlink",
                            3000,
                            args.seed,
                        )
                        .map_err(|e| format!("{name}: {e}"))?;
                    println!(
                        "{:<24} c-bound {:.4} ms  mw {} ms  leo {} ms  fiber {:.4} ms  \
                         winner {}",
                        name,
                        o.c_bound_ms,
                        p(o.microwave_ms),
                        p(o.leo_ms),
                        o.fiber_ms,
                        o.winner,
                    );
                }
                let entries = engine
                    .stretch_sweep(&analysis.session, "New Line Networks", date, "starlink")
                    .map_err(|e| format!("stretch sweep: {e}"))?;
                let cdf_of = |pick: fn(&hft_race::StretchEntry) -> Option<f64>| {
                    let values: Vec<f64> = entries.iter().filter_map(pick).collect();
                    hft_race::stretch_cdf(&values)
                };
                let mw = cdf_of(|e| e.mw_stretch);
                let fiber = cdf_of(|e| Some(e.fiber_stretch));
                let leo = cdf_of(|e| e.leo_stretch);
                let series = vec![
                    hft_viz::chart::Series::cdf_steps("microwave", "#8a3324", &mw),
                    hft_viz::chart::Series::cdf_steps("LEO", "#1f77b4", &leo),
                    hft_viz::chart::Series::cdf_steps("fiber", "#666666", &fiber),
                ];
                let cfg = hft_viz::chart::ChartConfig {
                    title: "Stretch factor vs c across corridor and transoceanic segments"
                        .to_string(),
                    x_label: "stretch (one-way latency / vacuum bound)".to_string(),
                    y_label: "CDF over segments".to_string(),
                    y_range: Some((0.0, 1.0)),
                    ..hft_viz::chart::ChartConfig::default()
                };
                write(
                    &out.join("race_stretch_cdf.svg"),
                    &hft_viz::chart::render(&cfg, &series),
                )
                .map_err(io_err)?;
                let mut csv =
                    String::from("pair,geodesic_km,mw_stretch,fiber_stretch,leo_stretch\n");
                for e in &entries {
                    let opt = |v: Option<f64>| v.map(|x| format!("{x:.6}")).unwrap_or_default();
                    csv.push_str(&format!(
                        "{},{:.3},{},{:.6},{}\n",
                        e.pair,
                        e.geodesic_km,
                        opt(e.mw_stretch),
                        e.fiber_stretch,
                        opt(e.leo_stretch),
                    ));
                }
                write(&out.join("race_stretch_cdf.csv"), &csv).map_err(io_err)?;
            }
            "entity" => {
                let candidates = report::entity_scan(&analysis);
                if candidates.is_empty() {
                    println!("no complementary-link pairs found");
                }
                for c in &candidates {
                    let fmt = |v: Option<f64>| {
                        v.map(|x| format!("{x:.5} ms"))
                            .unwrap_or_else(|| "not connected".into())
                    };
                    println!(
                        "{} + {}: alone {} / {}, merged {:.5} ms via {} shared towers{}",
                        c.a,
                        c.b,
                        fmt(c.a_alone_ms),
                        fmt(c.b_alone_ms),
                        c.joint_latency_ms,
                        c.shared_towers,
                        if c.jointly_connected_only() {
                            "  (joint-only!)"
                        } else {
                            ""
                        },
                    );
                }
            }
            "overhead" => {
                let asof = report::snapshot_date();
                let nln = report::network_of(&analysis, "New Line Networks", asof);
                let jm = report::network_of(&analysis, "Jefferson Microwave", asof);
                match hft_core::overhead::crossover_overhead_us(
                    &nln,
                    &jm,
                    &corridor::CME,
                    &corridor::EQUINIX_NY4,
                ) {
                    Some(o) => println!(
                        "Jefferson Microwave (fewer towers) overtakes New Line Networks \
                         above {o:.2} µs of per-tower overhead (§3 implies ~1.4 µs)"
                    ),
                    None => println!("no crossover"),
                }
            }
            "export" => {
                let text = hft_uls::flatfile::encode(eco.db.licenses());
                write(&out.join("corpus.uls"), &text).map_err(io_err)?;
                println!("{} licenses exported", eco.db.len());
            }
            "yaml" => {
                let name = args
                    .name
                    .as_deref()
                    .ok_or("yaml requires a licensee name")?;
                let net = report::network_of(&analysis, name, report::snapshot_date());
                if net.tower_count() == 0 {
                    return Err(format!("no towers for licensee {name:?}"));
                }
                let y = hft_core::yaml::to_yaml(&net);
                let file = out.join(format!("{}.yaml", name.replace(' ', "_")));
                write(&file, &y).map_err(io_err)?;
            }
            other => return Err(format!("unknown command {other:?}\n{}", usage())),
        }
        Ok(())
    };

    if args.command == "all" {
        for cmd in [
            "funnel", "table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4a", "fig4b",
            "fig5", "weather", "race", "entity", "overhead", "export",
        ] {
            println!("==== {cmd} ====");
            run_one(cmd)?;
        }
    } else {
        run_one(&args.command)?;
    }
    if args.stats {
        println!("{}", analysis.session_stats_json());
    }
    Ok(())
}

/// The `trace` command: pull captured traces from a running server's
/// flight recorder over the wire protocol and print their waterfalls.
/// `--id HEX` fetches one trace; otherwise the `--limit` slowest.
fn run_trace(args: &Args) -> Result<(), String> {
    let addr = args
        .connect
        .as_deref()
        .ok_or("trace requires --connect HOST:PORT")?;
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| format!("bad --connect address {addr:?}"))?;
    let mut client = hft_serve::Client::connect_with(&addr, hft_serve::Proto::Binary)
        .map_err(|e| format!("{addr}: {e}"))?;
    let response = client
        .call(&hft_serve::Request::Traces {
            limit: args.limit,
            trace_id: args.id,
        })
        .map_err(|e| e.to_string())?;
    match response {
        hft_serve::Response::Traces { traces } => {
            if traces.is_empty() {
                match args.id {
                    Some(id) => println!(
                        "no captured trace {} (evicted, or never sampled)",
                        hft_obs::format_trace_id(id)
                    ),
                    None => println!(
                        "no captured traces yet — serve with --trace-sample 1 or drive \
                         requests past the slow threshold"
                    ),
                }
            }
            for t in &traces {
                print!("{}", t.render());
            }
            Ok(())
        }
        hft_serve::Response::Error { message } => Err(message),
        other => Err(format!("unexpected response {other:?}")),
    }
}

/// The `metrics` command: drive a representative query mix through an
/// in-process [`hft_serve::Service`] so every layer's instruments fire,
/// then render the full telemetry registry — deterministic JSON by
/// default, Prometheus text with `--prom`.
fn run_metrics(
    eco: &hftnetview::hft_corridor::GeneratedEcosystem,
    prom: bool,
) -> Result<(), String> {
    use hft_serve::{Request, Response};

    let service = hft_serve::Service::new(&eco.db);
    let asof = report::snapshot_date();
    let reference = corridor::CME.position();
    let mix = [
        Request::Geographic {
            lat_deg: reference.lat_deg(),
            lon_deg: reference.lon_deg(),
            radius_km: 150.0,
        },
        Request::SiteSearch {
            service: "MG".into(),
            class: "FXO".into(),
        },
        Request::Network {
            licensee: "New Line Networks".into(),
            date: asof,
        },
        Request::Route {
            licensee: "New Line Networks".into(),
            date: asof,
            from: "CME".into(),
            to: "NY4".into(),
        },
        Request::Apa {
            licensee: "Webline Holdings".into(),
            date: asof,
            from: "CME".into(),
            to: "NY4".into(),
        },
    ];
    for request in &mix {
        // Twice: the repeat exercises the cache-hit counters too.
        for _ in 0..2 {
            if let Response::Error { message } = service.handle(request) {
                return Err(format!("metrics workload: {message}"));
            }
        }
    }
    let snapshot = hft_obs::global().snapshot();
    if prom {
        print!("{}", hft_obs::expo::render_prometheus(&snapshot));
    } else {
        println!("{}", hft_obs::expo::render_json(&snapshot));
    }
    Ok(())
}

/// Background registry dumper for `serve --metrics-interval`: every
/// `secs`, write the registry JSON to `out` (atomically, via a sibling
/// temp file) or to stderr, and drain the slow-query log to stderr.
fn spawn_metrics_dumper(
    secs: u64,
    out: Option<PathBuf>,
) -> (
    std::sync::Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let interval = std::time::Duration::from_secs(secs);
        let tick = std::time::Duration::from_millis(50);
        loop {
            // Sleep in short ticks so shutdown is prompt.
            let mut slept = std::time::Duration::ZERO;
            while slept < interval && !flag.load(Ordering::Relaxed) {
                std::thread::sleep(tick);
                slept += tick;
            }
            let stopping = flag.load(Ordering::Relaxed);
            let json = hft_obs::expo::render_json(&hft_obs::global().snapshot());
            match &out {
                Some(path) => {
                    let tmp = path.with_extension("tmp");
                    let write = std::fs::write(&tmp, format!("{json}\n"))
                        .and_then(|()| std::fs::rename(&tmp, path));
                    if let Err(e) = write {
                        eprintln!("metrics: {}: {e}", path.display());
                    }
                }
                None => eprintln!("metrics: {json}"),
            }
            for tree in hft_obs::take_slow_queries() {
                eprintln!(
                    "slow query ({:.1} ms):\n{}",
                    tree.total_ns() as f64 / 1e6,
                    tree.render()
                );
            }
            if stopping {
                // One final dump on the way out, then exit.
                return;
            }
        }
    });
    (stop, handle)
}

/// Run the serve loop over `host`, optionally registering the HTTP
/// explorer on `http` as an extra listener multiplexed on the same
/// readiness loop, worker pool, and admission queue. The explorer
/// requires the evented io plane (`run_with_extras` rejects
/// `--io threaded --http PORT` combinations).
fn run_serve<H: hft_http::HttpHost + Sync>(
    server: &hft_serve::Server,
    host: &H,
    http: Option<u16>,
) -> std::io::Result<hft_serve::ServeSnapshot> {
    match http {
        None => server.run_with(host),
        Some(port) => {
            let explorer = hft_http::HttpExplorer::new(host);
            let extra = hft_serve::ExtraListener::bind(&format!("127.0.0.1:{port}"), &explorer)?;
            eprintln!("http explorer on http://{}", extra.local_addr()?);
            server.run_with_extras(host, std::slice::from_ref(&extra))
        }
    }
}

/// The `serve --follow` loop: tail `dir` for transaction dumps on a
/// background thread, publishing one corpus generation per ingested
/// batch, while the server answers queries against the latest
/// generation. Starts from an empty corpus (generation 0).
///
/// With `shards > 1` the publisher targets a [`hft_ingest::ShardedStore`]
/// — every ingested batch re-partitions the corpus and advances each
/// shard's generation in lockstep — and the server runs a
/// [`hft_serve::ShardRouter`] over the fleet.
fn serve_follow(
    server: &hft_serve::Server,
    dir: &Path,
    shards: usize,
    strategy: hft_uls::ShardStrategy,
    http: Option<u16>,
) -> std::io::Result<hft_serve::ServeSnapshot> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    enum Target {
        Single(Arc<hft_ingest::SnapshotStore>),
        Fleet(Arc<hft_ingest::ShardedStore>),
    }
    let target = if shards > 1 {
        Target::Fleet(Arc::new(hft_ingest::ShardedStore::seeded(
            &UlsDatabase::new(),
            shards,
            strategy,
            None,
        )))
    } else {
        Target::Single(Arc::new(hft_ingest::SnapshotStore::new(UlsDatabase::new())))
    };
    let stop = Arc::new(AtomicBool::new(false));
    let ingester = {
        let publish: Box<dyn Fn(&hft_ingest::Applier) -> u64 + Send> = match &target {
            Target::Single(store) => {
                let store = Arc::clone(store);
                Box::new(move |applier| applier.publish(&store))
            }
            Target::Fleet(fleet) => {
                let fleet = Arc::clone(fleet);
                Box::new(move |applier| applier.publish_sharded(&fleet))
            }
        };
        let stop = Arc::clone(&stop);
        let dir = dir.to_path_buf();
        std::thread::spawn(move || {
            let mut follower = hft_ingest::DumpFollower::new(dir);
            let mut applier = hft_ingest::Applier::new(UlsDatabase::new());
            while !stop.load(Ordering::Relaxed) {
                let files = match follower.poll() {
                    Ok(files) => files,
                    Err(e) => {
                        eprintln!("ingest: poll failed: {e}");
                        Vec::new()
                    }
                };
                if files.is_empty() {
                    std::thread::sleep(std::time::Duration::from_millis(200));
                    continue;
                }
                for (path, date) in files {
                    let text = match std::fs::read_to_string(&path) {
                        Ok(text) => text,
                        Err(e) => {
                            eprintln!("ingest: {}: {e}", path.display());
                            continue;
                        }
                    };
                    match hft_ingest::decode_batch(&text) {
                        Ok((batch, report)) => {
                            for q in &report.quarantined {
                                eprintln!("ingest: {}: quarantined {q}", path.display());
                            }
                            let events = batch.events.len();
                            for c in applier.apply(&batch) {
                                eprintln!("ingest: {}: conflict {c}", path.display());
                            }
                            let generation = publish(&applier);
                            eprintln!(
                                "ingested {} ({events} events) -> {} licenses, generation {generation}",
                                date.to_iso(),
                                applier.db().len()
                            );
                        }
                        Err(e) => eprintln!("ingest: {}: {e}", path.display()),
                    }
                }
            }
        })
    };
    let stats = match &target {
        Target::Single(store) => {
            let live = hft_serve::LiveService::new(Arc::clone(store));
            run_serve(server, &live, http)
        }
        Target::Fleet(fleet) => {
            let router = hft_serve::ShardRouter::over(fleet);
            run_serve(server, &router, http)
        }
    };
    stop.store(true, Ordering::Relaxed);
    let _ = ingester.join();
    stats
}

/// The `ingest` command: render the generated corpus's event history as
/// daily dumps under `out/dumps`, replay them through the incremental
/// applier, and verify every yearly checkpoint against from-scratch
/// builds — index equality, reference-interpreter equality, and
/// byte-identical YAML reconstructions against the omniscient corpus.
fn run_ingest(
    eco: &hftnetview::hft_corridor::GeneratedEcosystem,
    out: &Path,
) -> Result<(), String> {
    // The omniscient baseline is the corpus *as published through the
    // ULS text dialect*: dump files quantize coordinates to DMS, so the
    // fair ground truth is the generated corpus after one round trip
    // through the same codec (a fixed point of encode∘decode), not the
    // full-precision in-memory floats.
    let published = hft_uls::flatfile::decode(&hft_uls::flatfile::encode(eco.db.licenses()))
        .map_err(|e| format!("publishing the corpus: {e}"))?;
    let published_db = UlsDatabase::from_licenses(published);

    let batches = hft_ingest::render_history(published_db.licenses());
    let dump_dir = out.join("dumps");
    let paths = hft_ingest::write_dump_dir(&dump_dir, &batches).map_err(|e| e.to_string())?;
    eprintln!(
        "rendered {} daily dumps ({} licenses) into {}",
        paths.len(),
        published_db.len(),
        dump_dir.display()
    );

    let eco_session = hft_core::session::AnalysisSession::new(&published_db);
    let mut applier = hft_ingest::Applier::new(UlsDatabase::new());
    let mut model: Vec<License> = Vec::new();
    let mut checkpoints = 0usize;

    for (i, path) in paths.iter().enumerate() {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let (batch, report) =
            hft_ingest::decode_batch(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if !report.is_clean() {
            return Err(format!(
                "{}: {} quarantined transactions in a replay dump",
                path.display(),
                report.count()
            ));
        }
        let conflicts = applier.apply(&batch);
        if let Some(c) = conflicts.first() {
            return Err(format!("{}: unexpected conflict: {c}", path.display()));
        }
        if hft_ingest::model::apply_events(&mut model, &batch) != 0 {
            return Err(format!(
                "{}: reference interpreter saw a conflict",
                path.display()
            ));
        }

        let last = i + 1 == paths.len();
        if last || batches[i + 1].date.year() != batch.date.year() {
            ingest_checkpoint(&applier, &model, &eco_session, batch.date)?;
            checkpoints += 1;
        }
    }

    // Full-history equality: the replayed corpus *is* the published one
    // (replay orders by grant date, so compare sorted by license id).
    let mut got = applier.db().licenses().to_vec();
    got.sort_unstable_by_key(|l| l.id);
    let mut want = published_db.licenses().to_vec();
    want.sort_unstable_by_key(|l| l.id);
    if got != want {
        return Err("replayed corpus differs from the published corpus".into());
    }
    // The §2.2 scrape funnel agrees too.
    let replay_session = hft_core::session::AnalysisSession::new(applier.db());
    let cfg = hft_uls::scrape::ScrapeConfig::default();
    let reference = corridor::CME.position();
    let got_scrape = replay_session
        .scrape(&reference, &cfg)
        .expect("session has a portal");
    let want_scrape = eco_session
        .scrape(&reference, &cfg)
        .expect("session has a portal");
    if got_scrape.report != want_scrape.report || got_scrape.shortlist != want_scrape.shortlist {
        return Err("replayed scrape funnel differs from the generated corpus".into());
    }
    let stats = applier.stats();
    println!(
        "replay verified: {} batches, {} events ({} added, {} updated, {} cancelled), \
         {} conflicts, {checkpoints} yearly checkpoints",
        stats.batches,
        stats.events(),
        stats.added,
        stats.updated,
        stats.cancelled,
        stats.conflicts
    );
    Ok(())
}

/// One yearly checkpoint: the incrementally maintained corpus must be
/// indistinguishable from a from-scratch build at this date.
fn ingest_checkpoint(
    applier: &hft_ingest::Applier,
    model: &[License],
    eco_session: &hft_core::session::AnalysisSession<'_>,
    date: Date,
) -> Result<(), String> {
    use hft_core::yaml::to_yaml;

    // Incremental index maintenance == full rebuild of the same sequence.
    applier
        .verify()
        .map_err(|e| format!("{}: {e}", date.to_iso()))?;
    // Event semantics == the naive reference interpreter, and the
    // incrementally mutated corpus == a database built from scratch at
    // this date (license list and every secondary index).
    let from_scratch = UlsDatabase::from_licenses(model.to_vec());
    if *applier.db() != from_scratch {
        return Err(format!(
            "{}: applier corpus diverged from the from-scratch build",
            date.to_iso()
        ));
    }
    let replay_session = hft_core::session::AnalysisSession::new(applier.db());
    let scratch_session = hft_core::session::AnalysisSession::new(&from_scratch);
    for name in report::FIGURE_NETWORKS {
        let net = replay_session.network_at(name, date);
        // Byte-identical artifacts vs the from-scratch build at this
        // date: same corpus, one maintained incrementally.
        let got = to_yaml(&net);
        if got != to_yaml(&scratch_session.network_at(name, date)) {
            return Err(format!(
                "{}: {name}: incremental-apply YAML differs from the from-scratch build",
                date.to_iso()
            ));
        }
        // Structurally identical vs the omniscient generated corpus:
        // replay hides future lifecycle events, but an as-of-`date`
        // reconstruction may never notice. (Tower numbering and snap
        // representatives depend on corpus order, so the comparison is
        // over canonical link/tower sets, not bytes.)
        let omniscient = eco_session.network_at(name, date);
        if canonical_network(&net) != canonical_network(&omniscient) {
            return Err(format!(
                "{}: {name}: replayed network differs from the omniscient build",
                date.to_iso()
            ));
        }
    }
    eprintln!(
        "checkpoint {}: {} licenses verified (indices, reference model, {} reconstructions)",
        date.to_iso(),
        applier.db().len(),
        report::FIGURE_NETWORKS.len()
    );
    Ok(())
}

/// An order-independent rendering of a reconstructed network: sorted
/// tower cells plus sorted links keyed by (unordered) cell pair, with
/// each link's exact frequencies and backing license ids. Tower
/// numbering and snap-representative coordinates depend on corpus
/// iteration order, so byte comparison only works between builds of the
/// *same* corpus; this form compares reconstructions across corpora.
type CanonicalNetwork = (
    Vec<hft_geodesy::SnappedCoord>,
    Vec<(
        hft_geodesy::SnappedCoord,
        hft_geodesy::SnappedCoord,
        Vec<u64>,
        Vec<hft_uls::LicenseId>,
    )>,
);

fn canonical_network(net: &hft_core::Network) -> CanonicalNetwork {
    let mut towers: Vec<_> = net.graph.nodes().map(|(_, t)| t.cell).collect();
    towers.sort_unstable();
    let mut links: Vec<_> = net
        .graph
        .edges()
        .map(|(_, u, v, link)| {
            let (a, b) = (net.graph.node(u).cell, net.graph.node(v).cell);
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            let freqs: Vec<u64> = link.frequencies_ghz.iter().map(|f| f.to_bits()).collect();
            (a, b, freqs, link.licenses.clone())
        })
        .collect();
    links.sort_unstable();
    (towers, links)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
