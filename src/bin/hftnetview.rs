//! The `hftnetview` command-line tool: regenerate any table or figure of
//! the paper from the (simulated) ULS corpus, export datasets, and dump
//! reconstructed networks.
//!
//! ```text
//! hftnetview <command> [--seed N] [--out DIR]
//!
//! commands:
//!   funnel      §2.2 scrape-pipeline counts (57 → 29)
//!   table1      connected networks, latency/APA/towers
//!   table2      top-3 networks per corridor path
//!   table3      APA: New Line Networks vs Webline Holdings
//!   fig1        latency evolution 2013–2020 (SVG + CSV)
//!   fig2        active licenses over time (SVG + CSV)
//!   fig3        NLN network maps 2016 vs 2020 (GeoJSON + SVG)
//!   fig4a       link-length CDFs (SVG + CSV)
//!   fig4b       frequency CDFs (SVG + CSV)
//!   fig5        LEO vs microwave vs fiber comparison
//!   weather     §5 conditional-latency Monte Carlo
//!   entity      complementary-link entity-resolution scan (§6)
//!   overhead    per-tower overhead crossover analysis (§3)
//!   export      dump the license corpus as a ULS-style flat file
//!   yaml NAME   dump one licensee's 2020-04-01 network as YAML
//!   serve       run the concurrent query service over TCP
//!   all         everything above (except serve), written to --out
//! ```
//!
//! `serve` takes `--port` (default 4710; 0 picks a free port),
//! `--workers` and `--queue-depth`, answers the hft-serve wire protocol
//! until a `shutdown` request arrives, then dumps the serving counters
//! as JSON on stdout. Any analysis command accepts `--stats` to print
//! the session's cache counters as JSON after the run.

use hftnetview::prelude::*;
use hftnetview::{report, weather};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    command: String,
    name: Option<String>,
    seed: u64,
    out: PathBuf,
    port: u16,
    workers: usize,
    queue_depth: usize,
    stats: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut parsed = Args {
        command,
        name: None,
        seed: 2020,
        out: PathBuf::from("out"),
        port: 4710,
        workers: 4,
        queue_depth: 64,
        stats: false,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                parsed.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--out" => {
                parsed.out = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--port" => {
                let v = args.next().ok_or("--port needs a value")?;
                parsed.port = v.parse().map_err(|_| format!("bad port {v:?}"))?;
            }
            "--workers" => {
                let v = args.next().ok_or("--workers needs a value")?;
                parsed.workers = v.parse().map_err(|_| format!("bad worker count {v:?}"))?;
            }
            "--queue-depth" => {
                let v = args.next().ok_or("--queue-depth needs a value")?;
                parsed.queue_depth = v.parse().map_err(|_| format!("bad queue depth {v:?}"))?;
            }
            "--stats" => parsed.stats = true,
            other if parsed.name.is_none() && !other.starts_with('-') => {
                parsed.name = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(parsed)
}

fn usage() -> String {
    "usage: hftnetview <funnel|table1|table2|table3|fig1|fig2|fig3|fig4a|fig4b|fig5|weather|entity|overhead|export|yaml NAME|serve|all> [--seed N] [--out DIR] [--stats] [--port N] [--workers N] [--queue-depth N]".to_string()
}

fn write(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(contents.as_bytes())?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    let io_err = |e: std::io::Error| e.to_string();
    let eco = generate(&chicago_nj(), args.seed);
    if args.command == "serve" {
        let server = hft_serve::Server::bind(hft_serve::ServeConfig {
            addr: format!("127.0.0.1:{}", args.port),
            workers: args.workers,
            queue_depth: args.queue_depth,
            ..hft_serve::ServeConfig::default()
        })
        .map_err(io_err)?;
        let addr = server.local_addr().map_err(io_err)?;
        eprintln!(
            "serving {} licenses on {addr} ({} workers, queue depth {})",
            eco.db.len(),
            args.workers,
            args.queue_depth
        );
        let stats = server.run(&eco.db).map_err(io_err)?;
        println!("{}", stats.to_json().encode());
        return Ok(());
    }
    let analysis = report::Analysis::new(&eco);
    let out = &args.out;
    let run_one = |cmd: &str| -> Result<(), String> {
        match cmd {
            "funnel" => {
                print!("{}", report::funnel_render(&report::funnel(&analysis)));
            }
            "table1" => {
                let rows = report::table1(&analysis);
                let (text, csv) = report::table1_render(&rows);
                print!("{text}");
                write(&out.join("table1.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "table2" => {
                let t = report::table2(&analysis);
                let (text, csv) = report::table2_render(&t);
                print!("{text}");
                write(&out.join("table2.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "table3" => {
                let rows = report::table3(&analysis);
                let (text, csv) = report::table3_render(&rows);
                print!("{text}");
                write(&out.join("table3.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "fig1" => {
                let series = report::evolution(&analysis);
                let (svg, csv) = report::fig1_render(&series);
                write(&out.join("fig1.svg"), &svg).map_err(io_err)?;
                write(&out.join("fig1.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "fig2" => {
                let series = report::evolution(&analysis);
                let (svg, csv) = report::fig2_render(&series);
                write(&out.join("fig2.svg"), &svg).map_err(io_err)?;
                write(&out.join("fig2.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "fig3" => {
                let (gj16, gj20, svg16, svg20) = report::fig3(&analysis);
                write(&out.join("fig3_nln_2016.geojson"), &gj16).map_err(io_err)?;
                write(&out.join("fig3_nln_2020.geojson"), &gj20).map_err(io_err)?;
                write(&out.join("fig3_nln_2016.svg"), &svg16).map_err(io_err)?;
                write(&out.join("fig3_nln_2020.svg"), &svg20).map_err(io_err)?;
            }
            "fig4a" => {
                let cdfs = report::fig4a(&analysis);
                for (name, cdf) in &cdfs {
                    println!(
                        "{name}: median link length {:.1} km over {} links",
                        cdf.median(),
                        cdf.len()
                    );
                }
                let (svg, csv) = report::cdf_render("Fig 4a: link lengths", "Distance (km)", &cdfs);
                write(&out.join("fig4a.svg"), &svg).map_err(io_err)?;
                write(&out.join("fig4a.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "fig4b" => {
                let cdfs = report::fig4b(&analysis);
                for (name, cdf) in &cdfs {
                    println!(
                        "{name}: {:.0}% of frequencies under 7 GHz",
                        cdf.fraction_below(7.0) * 100.0
                    );
                }
                let (svg, csv) =
                    report::cdf_render("Fig 4b: operating frequencies", "Frequency (GHz)", &cdfs);
                write(&out.join("fig4b.svg"), &svg).map_err(io_err)?;
                write(&out.join("fig4b.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "fig5" => {
                let rows = report::fig5();
                let (text, csv) = report::fig5_render(&rows);
                print!("{text}");
                write(&out.join("fig5.csv"), &csv.to_csv()).map_err(io_err)?;
            }
            "weather" => {
                let sampler = hft_radio::WeatherSampler::stormy_season();
                println!("Conditional CME-NY4 latency under corridor weather (3000 states):");
                println!(
                    "{:<24} {:>9} {:>9} {:>9} {:>9} {:>7}",
                    "Licensee", "clear", "p50", "p95", "p99", "avail"
                );
                for name in ["New Line Networks", "Webline Holdings"] {
                    let asof = report::snapshot_date();
                    let net = analysis.session.network(name, asof);
                    let rg = analysis.session.routing_graph(
                        name,
                        asof,
                        &corridor::CME,
                        &corridor::EQUINIX_NY4,
                    );
                    let o = weather::conditional_latency_on(
                        &rg,
                        &net,
                        &corridor::CME,
                        &corridor::EQUINIX_NY4,
                        &sampler,
                        3000,
                        args.seed,
                    )
                    .ok_or_else(|| format!("{name}: no route"))?;
                    let p = |v: f64| {
                        if v.is_finite() {
                            format!("{v:.4}")
                        } else {
                            "down".to_string()
                        }
                    };
                    println!(
                        "{:<24} {:>9} {:>9} {:>9} {:>9} {:>6.1}%",
                        name,
                        p(o.clear_ms),
                        p(o.p50_ms),
                        p(o.p95_ms),
                        p(o.p99_ms),
                        o.availability * 100.0
                    );
                }
            }
            "entity" => {
                let candidates = report::entity_scan(&analysis);
                if candidates.is_empty() {
                    println!("no complementary-link pairs found");
                }
                for c in &candidates {
                    let fmt = |v: Option<f64>| {
                        v.map(|x| format!("{x:.5} ms"))
                            .unwrap_or_else(|| "not connected".into())
                    };
                    println!(
                        "{} + {}: alone {} / {}, merged {:.5} ms via {} shared towers{}",
                        c.a,
                        c.b,
                        fmt(c.a_alone_ms),
                        fmt(c.b_alone_ms),
                        c.joint_latency_ms,
                        c.shared_towers,
                        if c.jointly_connected_only() {
                            "  (joint-only!)"
                        } else {
                            ""
                        },
                    );
                }
            }
            "overhead" => {
                let asof = report::snapshot_date();
                let nln = report::network_of(&analysis, "New Line Networks", asof);
                let jm = report::network_of(&analysis, "Jefferson Microwave", asof);
                match hft_core::overhead::crossover_overhead_us(
                    &nln,
                    &jm,
                    &corridor::CME,
                    &corridor::EQUINIX_NY4,
                ) {
                    Some(o) => println!(
                        "Jefferson Microwave (fewer towers) overtakes New Line Networks \
                         above {o:.2} µs of per-tower overhead (§3 implies ~1.4 µs)"
                    ),
                    None => println!("no crossover"),
                }
            }
            "export" => {
                let text = hft_uls::flatfile::encode(eco.db.licenses());
                write(&out.join("corpus.uls"), &text).map_err(io_err)?;
                println!("{} licenses exported", eco.db.len());
            }
            "yaml" => {
                let name = args
                    .name
                    .as_deref()
                    .ok_or("yaml requires a licensee name")?;
                let net = report::network_of(&analysis, name, report::snapshot_date());
                if net.tower_count() == 0 {
                    return Err(format!("no towers for licensee {name:?}"));
                }
                let y = hft_core::yaml::to_yaml(&net);
                let file = out.join(format!("{}.yaml", name.replace(' ', "_")));
                write(&file, &y).map_err(io_err)?;
            }
            other => return Err(format!("unknown command {other:?}\n{}", usage())),
        }
        Ok(())
    };

    if args.command == "all" {
        for cmd in [
            "funnel", "table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4a", "fig4b",
            "fig5", "weather", "entity", "overhead", "export",
        ] {
            println!("==== {cmd} ====");
            run_one(cmd)?;
        }
    } else {
        run_one(&args.command)?;
    }
    if args.stats {
        println!("{}", analysis.session_stats_json());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
