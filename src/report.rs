//! One function per table and figure of the paper.
//!
//! Each function consumes an [`Analysis`] — a generated ecosystem plus
//! the [`AnalysisSession`] caching every derived artifact — runs the real
//! analysis pipeline, and returns both structured data and ready-to-print
//! text. The `repro` binary (crate `hft-bench`) and the `hftnetview` CLI
//! wrap these, and the integration tests assert the *shapes* the paper
//! reports (rankings, crossovers, contrast directions).
//!
//! Sharing one session across the functions means the 2020-04-01
//! snapshot reconstructed for Table 1 is the same in-memory network that
//! Table 2, Table 3 and Fig 4 analyze, and the nine-date evolution sweep
//! of Figs 1–2 reconstructs each licensee only once per lifecycle epoch.

use hft_core::corridor::{DataCenter, CME, EQUINIX_NY4, NASDAQ, NYSE};
use hft_core::session::AnalysisSession;
use hft_core::{metrics, Network};
use hft_corridor::GeneratedEcosystem;
use hft_leo::{compare as leo_compare, paper_segments, Comparison, Constellation};
use hft_time::{paper_sample_dates, Date};
use hft_uls::scrape::ScrapeConfig;
use hft_viz::chart::{render, ChartConfig, Series};
use hft_viz::csv::CsvTable;
use hft_viz::geojson::network_to_geojson;
use hft_viz::svgmap::network_to_svg;
use std::sync::Arc;

/// The shared view all report functions consume: the generated ecosystem
/// plus one [`AnalysisSession`] over its corpus.
pub struct Analysis<'a> {
    /// The generated license corpus and its scenario metadata.
    pub eco: &'a GeneratedEcosystem,
    /// The snapshot engine caching networks, routes and APA per epoch.
    pub session: AnalysisSession<'a>,
}

impl<'a> Analysis<'a> {
    /// Open a fresh session over `eco`.
    pub fn new(eco: &'a GeneratedEcosystem) -> Analysis<'a> {
        Analysis {
            eco,
            session: eco.session(),
        }
    }

    /// The session's cache counters as machine-readable JSON (the same
    /// shape the serve layer's `stats` response uses).
    pub fn session_stats_json(&self) -> String {
        self.session.stats().to_json()
    }

    /// The cached §2.2 shortlist (licensee names, sorted).
    fn shortlist(&self) -> Vec<String> {
        self.session
            .scrape(&CME.position(), &ScrapeConfig::default())
            .expect("session built from a database")
            .shortlist
            .clone()
    }
}

/// The paper's snapshot date, 1 April 2020.
pub fn snapshot_date() -> Date {
    Date::new(2020, 4, 1).expect("static date")
}

/// The five networks plotted in Figs. 1 and 2.
pub const FIGURE_NETWORKS: [&str; 5] = [
    "National Tower Company",
    "Webline Holdings",
    "Jefferson Microwave",
    "Pierce Broadband",
    "New Line Networks",
];

/// Distinguishable chart colors for the five figure networks.
const FIGURE_COLORS: [&str; 5] = ["#7f7f7f", "#9467bd", "#2ca02c", "#1f77b4", "#d62728"];

/// One licensee's network at a date, served from the session's epoch
/// cache and stamped with the exact requested date.
pub fn network_of(analysis: &Analysis, name: &str, date: Date) -> Network {
    analysis.session.network_at(name, date)
}

/// One Table-1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Licensee name.
    pub licensee: String,
    /// One-way CME→NY4 latency, ms.
    pub latency_ms: f64,
    /// Alternate path availability, fraction.
    pub apa: f64,
    /// Towers on the shortest route.
    pub towers: usize,
}

/// Table 1: connected networks between CME and NY4 in increasing latency
/// order, with APA and route tower counts.
///
/// Candidates come from the §2.2 scrape shortlist — the paper's own
/// funnel — not from every licensee in the corpus: only shortlisted
/// MG/FXO corridor players can be connected, so reconstructing the noise
/// licensees (the bulk of the corpus) just to find no route was wasted
/// work. The shortlist fans out across session worker threads.
pub fn table1(analysis: &Analysis) -> Vec<Table1Row> {
    let asof = snapshot_date();
    let s = &analysis.session;
    let mut rows: Vec<Table1Row> = s
        .par_map(analysis.shortlist(), |name| {
            let r = s.route(&name, asof, &CME, &EQUINIX_NY4)?;
            let apa = s.apa(&name, asof, &CME, &EQUINIX_NY4).unwrap_or(0.0);
            Some(Table1Row {
                licensee: name,
                latency_ms: r.latency_ms,
                apa,
                towers: r.towers,
            })
        })
        .into_iter()
        .flatten()
        .collect();
    rows.sort_by(|a, b| {
        a.latency_ms
            .partial_cmp(&b.latency_ms)
            .expect("finite latencies")
    });
    rows
}

/// Render Table 1 as text + CSV.
pub fn table1_render(rows: &[Table1Row]) -> (String, CsvTable) {
    let mut csv = CsvTable::new(&["licensee", "latency_ms", "apa_percent", "towers"]);
    let mut text = String::from(
        "Table 1: Connected networks, CME -> Equinix NY4, as of 2020-04-01\n\
         Licensee                | Latency (ms) | APA (%) | #Towers\n\
         ------------------------+--------------+---------+--------\n",
    );
    for r in rows {
        text.push_str(&format!(
            "{:<24}| {:>12.5} | {:>7.0} | {:>6}\n",
            r.licensee,
            r.latency_ms,
            r.apa * 100.0,
            r.towers
        ));
        csv.push_row(&[
            r.licensee.clone(),
            format!("{:.5}", r.latency_ms),
            format!("{:.0}", r.apa * 100.0),
            r.towers.to_string(),
        ]);
    }
    (text, csv)
}

/// One Table-2 path entry: `(path name, geodesic km, top-3 of (licensee,
/// latency ms))`.
pub type Table2Path = (String, f64, Vec<(String, f64)>);

/// Table 2: the three fastest networks per corridor path.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// The three corridor paths in the paper's order.
    pub paths: Vec<Table2Path>,
}

/// Compute Table 2 from the snapshot.
pub fn table2(analysis: &Analysis) -> Table2 {
    let asof = snapshot_date();
    let s = &analysis.session;
    let mut paths = Vec::new();
    for dc in [&EQUINIX_NY4, &NYSE, &NASDAQ] {
        let geodesic_km = CME.position().geodesic_distance_m(&dc.position()) / 1000.0;
        let mut entries: Vec<(String, f64)> = Vec::new();
        for name in &analysis.eco.connected_2020 {
            if let Some(ms) = s.latency_ms(name, asof, &CME, dc) {
                entries.push((name.clone(), ms));
            }
        }
        entries.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite latencies"));
        entries.truncate(3);
        paths.push((format!("CME-{}", dc.code), geodesic_km, entries));
    }
    Table2 { paths }
}

/// Render Table 2 as text + CSV.
pub fn table2_render(t: &Table2) -> (String, CsvTable) {
    let mut csv = CsvTable::new(&["path", "geodesic_km", "rank", "licensee", "latency_ms"]);
    let mut text =
        String::from("Table 2: Fastest networks per path as of 2020-04-01 (one-way ms)\n");
    for (path, geo_km, entries) in &t.paths {
        text.push_str(&format!("{path} ({geo_km:.0} km geodesic):\n"));
        for (i, (name, ms)) in entries.iter().enumerate() {
            text.push_str(&format!("  rank {}: {:<24} {:.5}\n", i + 1, name, ms));
            csv.push_row(&[
                path.clone(),
                format!("{geo_km:.0}"),
                (i + 1).to_string(),
                name.clone(),
                format!("{ms:.5}"),
            ]);
        }
    }
    (text, csv)
}

/// Table 3: APA per path for NLN and WH.
pub fn table3(analysis: &Analysis) -> Vec<(String, [Option<f64>; 3])> {
    let asof = snapshot_date();
    let s = &analysis.session;
    ["New Line Networks", "Webline Holdings"]
        .iter()
        .map(|name| {
            let apas = [&EQUINIX_NY4, &NYSE, &NASDAQ].map(|dc| s.apa(name, asof, &CME, dc));
            (name.to_string(), apas)
        })
        .collect()
}

/// Render Table 3 as text + CSV.
pub fn table3_render(rows: &[(String, [Option<f64>; 3])]) -> (String, CsvTable) {
    let mut csv = CsvTable::new(&["licensee", "apa_ny4", "apa_nyse", "apa_nasdaq"]);
    let mut text = String::from(
        "Table 3: Alternate path availability (%)\n\
         Licensee                | CME-NY4 | CME-NYSE | CME-NASDAQ\n",
    );
    for (name, apas) in rows {
        let fmt = |v: &Option<f64>| {
            v.map(|x| format!("{:.0}", x * 100.0))
                .unwrap_or_else(|| "-".into())
        };
        text.push_str(&format!(
            "{:<24}| {:>7} | {:>8} | {:>9}\n",
            name,
            fmt(&apas[0]),
            fmt(&apas[1]),
            fmt(&apas[2]),
        ));
        csv.push_row(&[name.clone(), fmt(&apas[0]), fmt(&apas[1]), fmt(&apas[2])]);
    }
    (text, csv)
}

/// Figs. 1 & 2: per-network time series of latency and active licenses.
#[derive(Debug, Clone)]
pub struct EvolutionSeries {
    /// Licensee.
    pub licensee: String,
    /// `(sample date, latency ms if connected, active licenses)`.
    pub points: Vec<(Date, Option<f64>, usize)>,
}

/// Compute the Fig. 1 / Fig. 2 series for the five figure networks over
/// the paper's sample dates.
///
/// One [`AnalysisSession::trajectory`] per network, fanned out across
/// worker threads: dates falling in the same lifecycle epoch share a
/// single reconstruction instead of re-running one per sample date.
pub fn evolution(analysis: &Analysis) -> Vec<EvolutionSeries> {
    let dates = paper_sample_dates();
    let s = &analysis.session;
    s.par_map(FIGURE_NETWORKS.to_vec(), |name| {
        let t = s.trajectory(name, &CME, &EQUINIX_NY4, &dates);
        EvolutionSeries {
            licensee: t.licensee,
            points: t
                .points
                .iter()
                .map(|p| (p.date, p.latency_ms, p.active_licenses))
                .collect(),
        }
    })
}

/// Render Fig. 1 (latency evolution) as SVG + CSV.
pub fn fig1_render(series: &[EvolutionSeries]) -> (String, CsvTable) {
    let mut csv = CsvTable::new(&["licensee", "date", "latency_ms"]);
    let chart_series: Vec<Series> = series
        .iter()
        .enumerate()
        .map(|(i, s)| Series {
            label: s.licensee.clone(),
            color: FIGURE_COLORS[i % FIGURE_COLORS.len()].to_string(),
            points: s
                .points
                .iter()
                .map(|(d, lat, _)| (d.decimal_year(), *lat))
                .collect(),
        })
        .collect();
    for s in series {
        for (d, lat, _) in &s.points {
            if let Some(ms) = lat {
                csv.push_row(&[s.licensee.clone(), d.to_iso(), format!("{ms:.5}")]);
            }
        }
    }
    let cfg = ChartConfig {
        title: "Fig 1: CME-NY4 latency evolution".into(),
        x_label: "Time".into(),
        y_label: "Latency (ms)".into(),
        // The paper deliberately starts the y-axis at a non-zero point.
        y_range: Some((3.95, 4.05)),
        ..Default::default()
    };
    (render(&cfg, &chart_series), csv)
}

/// Render Fig. 2 (active licenses) as SVG + CSV.
pub fn fig2_render(series: &[EvolutionSeries]) -> (String, CsvTable) {
    let mut csv = CsvTable::new(&["licensee", "date", "active_licenses"]);
    let chart_series: Vec<Series> = series
        .iter()
        .enumerate()
        .map(|(i, s)| Series {
            label: s.licensee.clone(),
            color: FIGURE_COLORS[i % FIGURE_COLORS.len()].to_string(),
            points: s
                .points
                .iter()
                .map(|(d, _, n)| (d.decimal_year(), Some(*n as f64)))
                .collect(),
        })
        .collect();
    for s in series {
        for (d, _, n) in &s.points {
            csv.push_row(&[s.licensee.clone(), d.to_iso(), n.to_string()]);
        }
    }
    let cfg = ChartConfig {
        title: "Fig 2: active licenses over time".into(),
        x_label: "Time".into(),
        y_label: "No. of active licenses".into(),
        y_range: Some((0.0, 180.0)),
        ..Default::default()
    };
    (render(&cfg, &chart_series), csv)
}

/// Fig. 3 artifacts: NLN's network at the beginning of 2016 and at the
/// 2020 snapshot, as `(geojson_2016, geojson_2020, svg_2016, svg_2020)`.
pub fn fig3(analysis: &Analysis) -> (String, String, String, String) {
    let nln_2016 = network_of(
        analysis,
        "New Line Networks",
        Date::new(2016, 1, 1).expect("static"),
    );
    let nln_2020 = network_of(analysis, "New Line Networks", snapshot_date());
    let markers: Vec<(&str, hft_geodesy::LatLon)> = [&CME, &EQUINIX_NY4, &NYSE, &NASDAQ]
        .iter()
        .map(|dc: &&DataCenter| (dc.code, dc.position()))
        .collect();
    (
        network_to_geojson(&nln_2016),
        network_to_geojson(&nln_2020),
        network_to_svg(&nln_2016, &markers),
        network_to_svg(&nln_2020, &markers),
    )
}

/// Fig. 4a: link-length CDFs on low-latency CME→NY4 paths for WH and NLN.
pub fn fig4a(analysis: &Analysis) -> Vec<(String, hft_core::Cdf)> {
    let asof = snapshot_date();
    ["Webline Holdings", "New Line Networks"]
        .iter()
        .filter_map(|name| {
            let net = analysis.session.network(name, asof);
            metrics::link_length_cdf(&net, &CME, &EQUINIX_NY4).map(|c| (name.to_string(), c))
        })
        .collect()
}

/// Fig. 4b: frequency CDFs — WH and NLN on their shortest paths, plus
/// NLN's alternate paths.
pub fn fig4b(analysis: &Analysis) -> Vec<(String, hft_core::Cdf)> {
    let asof = snapshot_date();
    let s = &analysis.session;
    let mut out = Vec::new();
    for name in ["Webline Holdings", "New Line Networks"] {
        let net = s.network(name, asof);
        if let Some(c) = metrics::shortest_path_frequency_cdf(&net, &CME, &EQUINIX_NY4) {
            out.push((name.to_string(), c));
        }
    }
    let nln = s.network("New Line Networks", asof);
    if let Some(c) = metrics::alternate_path_frequency_cdf(&nln, &CME, &EQUINIX_NY4) {
        out.push(("NLN-alternate".to_string(), c));
    }
    out
}

/// Render a set of CDFs as an SVG chart + CSV of the step points.
pub fn cdf_render(
    title: &str,
    x_label: &str,
    cdfs: &[(String, hft_core::Cdf)],
) -> (String, CsvTable) {
    let colors = ["#d62728", "#1f77b4", "#2ca02c", "#9467bd"];
    let series: Vec<Series> = cdfs
        .iter()
        .enumerate()
        .map(|(i, (label, cdf))| Series::cdf_steps(label, colors[i % colors.len()], &cdf.steps()))
        .collect();
    let mut csv = CsvTable::new(&["series", "value", "cdf"]);
    for (label, cdf) in cdfs {
        for (x, f) in cdf.steps() {
            csv.push_row(&[label.clone(), format!("{x:.4}"), format!("{f:.4}")]);
        }
    }
    let cfg = ChartConfig {
        title: title.into(),
        x_label: x_label.into(),
        y_label: "CDF".into(),
        y_range: Some((0.0, 1.0)),
        ..Default::default()
    };
    (render(&cfg, &series), csv)
}

/// Fig. 5 (quantified): LEO vs microwave vs fiber on the paper's
/// segments.
pub fn fig5() -> Vec<Comparison> {
    let shell = Constellation::starlink_like();
    leo_compare(&shell, &paper_segments(), 8)
}

/// Render the Fig. 5 comparison as text + CSV.
pub fn fig5_render(rows: &[Comparison]) -> (String, CsvTable) {
    let mut csv = CsvTable::new(&[
        "segment",
        "geodesic_km",
        "c_bound_ms",
        "microwave_ms",
        "fiber_ms",
        "leo_ms",
        "winner",
    ]);
    let mut text = String::from(
        "Fig 5 (quantified): one-way latency by technology (ms)\n\
         Segment                  | Geodesic km | c-bound |   MW    |  Fiber  |   LEO   | Winner\n",
    );
    for r in rows {
        let fmt_opt = |v: Option<f64>| v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into());
        text.push_str(&format!(
            "{:<25}| {:>11.0} | {:>7.3} | {:>7} | {:>7.3} | {:>7} | {}\n",
            r.name,
            r.geodesic_km,
            r.c_bound_ms,
            fmt_opt(r.microwave_ms),
            r.fiber_ms,
            fmt_opt(r.leo_ms),
            r.winner(),
        ));
        csv.push_row(&[
            r.name.clone(),
            format!("{:.0}", r.geodesic_km),
            format!("{:.3}", r.c_bound_ms),
            fmt_opt(r.microwave_ms),
            format!("{:.3}", r.fiber_ms),
            fmt_opt(r.leo_ms),
            r.winner().to_string(),
        ]);
    }
    (text, csv)
}

/// The §6 future-work item: scan the shortlisted licensees for
/// complementary-link evidence of split-entity filings (one physical
/// network behind several shell licensees).
pub fn entity_scan(analysis: &Analysis) -> Vec<hft_core::entity::MergeCandidate> {
    let asof = snapshot_date();
    let s = &analysis.session;
    let networks: Vec<(String, Arc<Network>)> = analysis
        .shortlist()
        .into_iter()
        .map(|name| {
            let net = s.network(&name, asof);
            (name, net)
        })
        .collect();
    hft_core::entity::complementary_pairs(&networks, &CME, &EQUINIX_NY4, 50.0)
}

/// The §2.2 funnel report.
pub fn funnel(analysis: &Analysis) -> hft_uls::scrape::FunnelReport {
    analysis
        .session
        .scrape(&CME.position(), &ScrapeConfig::default())
        .expect("session built from a database")
        .report
        .clone()
}

/// Render the funnel as text.
pub fn funnel_render(report: &hft_uls::scrape::FunnelReport) -> String {
    format!(
        "Section 2.2 funnel:\n  licensees near CME (10 km):     {}\n  after MG/FXO service filter:    {}\n  shortlisted (>= 11 filings):    {}\n",
        report.geographic_candidates, report.service_filtered, report.shortlisted,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hft_corridor::{chicago_nj, generate};
    use std::sync::OnceLock;

    fn eco() -> &'static Analysis<'static> {
        static ECO: OnceLock<GeneratedEcosystem> = OnceLock::new();
        static ANALYSIS: OnceLock<Analysis<'static>> = OnceLock::new();
        ANALYSIS.get_or_init(|| Analysis::new(ECO.get_or_init(|| generate(&chicago_nj(), 2020))))
    }

    #[test]
    fn table1_has_nine_rows_in_paper_order() {
        let rows = table1(eco());
        assert_eq!(rows.len(), 9);
        let names: Vec<&str> = rows.iter().map(|r| r.licensee.as_str()).collect();
        assert_eq!(names[0], "New Line Networks");
        assert_eq!(names[1], "Pierce Broadband");
        assert_eq!(names[2], "Jefferson Microwave");
        assert_eq!(names[8], "SW Networks");
        let (text, csv) = table1_render(&rows);
        assert!(text.contains("New Line Networks"));
        assert_eq!(csv.len(), 9);
    }

    #[test]
    fn table2_nln_sweeps_first_place() {
        let t = table2(eco());
        assert_eq!(t.paths.len(), 3);
        for (path, _, entries) in &t.paths {
            assert_eq!(entries[0].0, "New Line Networks", "{path}");
        }
        // Geodesic distances match the paper.
        assert!((t.paths[0].1 - 1186.0).abs() < 0.5);
        assert!((t.paths[1].1 - 1174.0).abs() < 0.5);
        assert!((t.paths[2].1 - 1176.0).abs() < 0.5);
    }

    #[test]
    fn table3_wh_dominates_nln() {
        let rows = table3(eco());
        let nln = &rows[0].1;
        let wh = &rows[1].1;
        for i in 0..3 {
            assert!(wh[i].unwrap() > nln[i].unwrap() + 0.15, "path {i}");
        }
    }

    #[test]
    fn evolution_series_shapes() {
        let series = evolution(eco());
        assert_eq!(series.len(), 5);
        let ntc = series
            .iter()
            .find(|s| s.licensee == "National Tower Company")
            .unwrap();
        // Connected 2013..2017, gone after.
        assert!(ntc.points[0].1.is_some(), "NTC connected at 2013");
        assert!(ntc.points[4].1.is_some(), "NTC connected at 2017");
        assert!(ntc.points[6].1.is_none(), "NTC gone by 2019");
        let pb = series
            .iter()
            .find(|s| s.licensee == "Pierce Broadband")
            .unwrap();
        assert!(
            pb.points[7].1.is_none(),
            "PB not yet connected on 2020-01-01"
        );
        assert!(pb.points[8].1.is_some(), "PB connected on 2020-04-01");
        let (svg1, csv1) = fig1_render(&series);
        assert!(svg1.contains("polyline"));
        assert!(csv1.len() > 20);
        let (svg2, csv2) = fig2_render(&series);
        assert!(svg2.contains("polyline"));
        assert_eq!(csv2.len(), 5 * 9);
    }

    #[test]
    fn fig3_artifacts_nonempty() {
        let (gj16, gj20, svg16, svg20) = fig3(eco());
        assert!(gj16.contains("FeatureCollection"));
        assert!(gj20.contains("FeatureCollection"));
        assert!(svg16.starts_with("<svg"));
        assert!(svg20.starts_with("<svg"));
        // 2020 network is bigger than 2016 (augmentation, Fig 3 caption).
        assert!(gj20.len() > gj16.len());
    }

    #[test]
    fn fig4a_medians_contrast() {
        let cdfs = fig4a(eco());
        assert_eq!(cdfs.len(), 2);
        let wh = &cdfs[0].1;
        let nln = &cdfs[1].1;
        assert!(wh.median() < nln.median() * 0.8, "WH links much shorter");
        let (svg, csv) = cdf_render("Fig 4a", "Distance (km)", &cdfs);
        assert!(svg.contains("polyline"));
        assert!(!csv.is_empty());
    }

    #[test]
    fn fig4b_band_contrast() {
        let cdfs = fig4b(eco());
        assert_eq!(cdfs.len(), 3);
        let wh = &cdfs[0].1;
        let nln = &cdfs[1].1;
        let alt = &cdfs[2].1;
        assert!(
            wh.fraction_below(7.0) > 0.94,
            "WH under 7 GHz: {}",
            wh.fraction_below(7.0)
        );
        assert!(nln.fraction_below(7.0) < 0.05, "NLN rides 11 GHz");
        assert!(
            alt.fraction_below(7.0) >= 0.18,
            "NLN alternates ≥18% in 6 GHz"
        );
    }

    #[test]
    fn funnel_counts() {
        let report = funnel(eco());
        assert_eq!(report.service_filtered, 57);
        assert_eq!(report.shortlisted, 29);
        assert!(funnel_render(&report).contains("57"));
    }
}
