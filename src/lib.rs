//! # hftnetview
//!
//! An open-source Rust reproduction of *"A Bird's Eye View of the
//! World's Fastest Networks"* (IMC 2020): reconstruction and analysis of
//! the high-frequency-trading microwave networks of the Chicago–New
//! Jersey corridor from (simulated) FCC Universal Licensing System
//! filings.
//!
//! This crate ties the workspace together:
//!
//! * [`hft_uls`] — the ULS license data model, flat-file codec, portal
//!   search interfaces and the §2.2 scrape pipeline;
//! * [`hft_corridor`] — the calibrated synthetic license corpus standing
//!   in for the real FCC data;
//! * [`hft_core`] — network reconstruction, routing, APA and the other
//!   §5 metrics, longitudinal analysis, YAML dumps;
//! * [`hft_radio`] — band plans and the ITU-style propagation models;
//! * [`hft_leo`] — the Fig. 5 LEO constellation comparison;
//! * [`hft_viz`] — GeoJSON/SVG/CSV outputs;
//! * [`report`] — one function per table/figure of the paper, producing
//!   the text/CSV/SVG artifacts recorded in `EXPERIMENTS.md`;
//! * [`weather`] — the §5 reliability argument as a Monte Carlo
//!   experiment (conditional latency under corridor weather).
//!
//! ## Quickstart
//!
//! ```
//! use hftnetview::prelude::*;
//!
//! // Generate the calibrated ecosystem (deterministic per seed).
//! let eco = generate(&chicago_nj(), 2020);
//!
//! // Reconstruct the fastest 2020 network and measure it.
//! let asof = Date::new(2020, 4, 1).unwrap();
//! let lics = eco.db.licensee_search("New Line Networks");
//! let nln = reconstruct(&lics, "New Line Networks", asof, &Default::default());
//! let route = route(&nln, &corridor::CME, &corridor::EQUINIX_NY4).unwrap();
//! assert!((route.latency_ms - 3.96171).abs() < 1e-4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hft_core;
pub use hft_corridor;
pub use hft_geodesy;
pub use hft_leo;
pub use hft_netgraph;
pub use hft_radio;
pub use hft_time;
pub use hft_uls;
pub use hft_viz;

pub mod report;
pub mod weather;

/// Commonly used items, for `use hftnetview::prelude::*`.
pub mod prelude {
    pub use hft_core::{corridor, metrics, reconstruct, route, Cdf, Network, ReconstructOptions};
    pub use hft_corridor::{chicago_nj, generate};
    pub use hft_geodesy::{LatLon, Medium};
    pub use hft_time::Date;
    pub use hft_uls::{License, UlsDatabase, UlsPortal};
}
