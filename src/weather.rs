//! The §5 reliability argument as a runnable experiment.
//!
//! The paper *argues* that Webline Holdings survives against faster
//! competitors because its shorter links, lower frequencies and higher
//! APA make it more reliable: "one network may be able to dominate
//! another in fair weather, but a more reliable network may be faster at
//! other times." This module quantifies that claim: sample corridor
//! weather states, fail the links whose rain attenuation exceeds their
//! fade margin, and recompute each network's conditional latency.

use hft_core::corridor::DataCenter;
use hft_core::route::RoutingGraph;
use hft_core::Network;
use hft_geodesy::gc_initial_bearing_deg;
use hft_radio::{LinkOutageModel, WeatherSampler};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Distribution summary of a network's latency across weather states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherOutcome {
    /// Clear-sky latency, ms.
    pub clear_ms: f64,
    /// Median conditional latency, ms (disconnected samples count as ∞).
    pub p50_ms: f64,
    /// 95th-percentile conditional latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile conditional latency, ms.
    pub p99_ms: f64,
    /// Fraction of weather states in which the network stays connected.
    pub availability: f64,
    /// Number of sampled weather states.
    pub samples: usize,
}

/// Run the weather Monte Carlo for `network` between two data centers.
///
/// Each sample draws a corridor weather state from `sampler`; every
/// microwave link whose rain attenuation (at its length and lowest
/// authorized frequency) exceeds its clear-air fade margin is removed,
/// and the route re-solved. Deterministic in `seed`.
pub fn conditional_latency(
    network: &Network,
    a: &DataCenter,
    b: &DataCenter,
    sampler: &WeatherSampler,
    samples: usize,
    seed: u64,
) -> Option<WeatherOutcome> {
    conditional_latency_on(
        &RoutingGraph::build(network, a, b),
        network,
        a,
        b,
        sampler,
        samples,
        seed,
    )
}

/// [`conditional_latency`] over a pre-built routing graph, so callers
/// holding a cached graph (e.g. an analysis session) skip the rebuild.
/// `rg` must have been built for `network` between `a` and `b`.
pub fn conditional_latency_on(
    rg: &RoutingGraph,
    network: &Network,
    a: &DataCenter,
    b: &DataCenter,
    sampler: &WeatherSampler,
    samples: usize,
    seed: u64,
) -> Option<WeatherOutcome> {
    let clear = rg.route_filtered(network, |_| true)?;

    // Pre-compute each link's outage model and corridor position
    // (fraction of the way from `a` to `b`, by projection onto the
    // corridor axis).
    let a_pos = a.position();
    let b_pos = b.position();
    let corridor_len = a_pos.geodesic_distance_m(&b_pos);
    let corridor_bearing = gc_initial_bearing_deg(&a_pos, &b_pos).to_radians();
    let links: Vec<(hft_netgraph::EdgeId, LinkOutageModel, f64)> = network
        .graph
        .edges()
        .map(|(e, u, v, link)| {
            let mid_u = network.graph.node(u).position;
            let mid_v = network.graph.node(v).position;
            // Project the link midpoint onto the corridor axis.
            let d = a_pos
                .geodesic_distance_m(&mid_u)
                .min(a_pos.geodesic_distance_m(&mid_v));
            let x = (d / corridor_len).clamp(0.0, 1.0);
            let freq = link
                .frequencies_ghz
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            let freq = if freq.is_finite() { freq } else { 11.0 };
            (e, LinkOutageModel::typical(link.length_m / 1000.0, freq), x)
        })
        .collect();
    let _ = corridor_bearing;

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut latencies: Vec<f64> = Vec::with_capacity(samples);
    let mut connected = 0usize;
    for _ in 0..samples {
        let state = sampler.sample(&mut rng);
        let latency = match state {
            None => Some(clear.latency_ms),
            Some(event) => {
                let mut down = std::collections::HashSet::new();
                for (e, model, x) in &links {
                    let rain = event.rain_at(*x);
                    if rain > 0.0 && !model.up_under_rain(rain) {
                        down.insert(*e);
                    }
                }
                if down.is_empty() {
                    Some(clear.latency_ms)
                } else {
                    rg.route_filtered(network, |e| !down.contains(&e))
                        .map(|r| r.latency_ms)
                }
            }
        };
        match latency {
            Some(ms) => {
                connected += 1;
                latencies.push(ms);
            }
            None => latencies.push(f64::INFINITY),
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("INF sorts fine"));
    let q = |p: f64| latencies[((p * samples as f64) as usize).min(samples - 1)];
    Some(WeatherOutcome {
        clear_ms: clear.latency_ms,
        p50_ms: q(0.50),
        p95_ms: q(0.95),
        p99_ms: q(0.99),
        availability: connected as f64 / samples as f64,
        samples,
    })
}

/// The §5 closing thought, quantified: "The most competitive trading
/// firms may even use a combination of both services to maintain their
/// advantage in varied conditions." Evaluates a *portfolio* of networks
/// against one shared sequence of weather states, taking the best
/// available latency in each state.
pub fn portfolio_latency(
    networks: &[&Network],
    a: &DataCenter,
    b: &DataCenter,
    sampler: &WeatherSampler,
    samples: usize,
    seed: u64,
) -> Option<WeatherOutcome> {
    if networks.is_empty() {
        return None;
    }
    struct Member {
        rg: RoutingGraph,
        clear_ms: f64,
        links: Vec<(hft_netgraph::EdgeId, LinkOutageModel, f64)>,
    }
    let a_pos = a.position();
    let b_pos = b.position();
    let corridor_len = a_pos.geodesic_distance_m(&b_pos);
    let mut members = Vec::new();
    for net in networks {
        let rg = RoutingGraph::build(net, a, b);
        let clear = rg.route_filtered(net, |_| true)?;
        let links = net
            .graph
            .edges()
            .map(|(e, u, v, link)| {
                let d = a_pos
                    .geodesic_distance_m(&net.graph.node(u).position)
                    .min(a_pos.geodesic_distance_m(&net.graph.node(v).position));
                let x = (d / corridor_len).clamp(0.0, 1.0);
                let freq = link
                    .frequencies_ghz
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min);
                let freq = if freq.is_finite() { freq } else { 11.0 };
                (e, LinkOutageModel::typical(link.length_m / 1000.0, freq), x)
            })
            .collect();
        members.push(Member {
            rg,
            clear_ms: clear.latency_ms,
            links,
        });
    }

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut latencies = Vec::with_capacity(samples);
    let mut connected = 0usize;
    for _ in 0..samples {
        let state = sampler.sample(&mut rng);
        let mut best = f64::INFINITY;
        for (net, m) in networks.iter().zip(&members) {
            let ms = match &state {
                None => Some(m.clear_ms),
                Some(event) => {
                    let down: std::collections::HashSet<_> = m
                        .links
                        .iter()
                        .filter(|(_, model, x)| {
                            let rain = event.rain_at(*x);
                            rain > 0.0 && !model.up_under_rain(rain)
                        })
                        .map(|(e, _, _)| *e)
                        .collect();
                    if down.is_empty() {
                        Some(m.clear_ms)
                    } else {
                        m.rg.route_filtered(net, |e| !down.contains(&e))
                            .map(|r| r.latency_ms)
                    }
                }
            };
            if let Some(ms) = ms {
                best = best.min(ms);
            }
        }
        if best.is_finite() {
            connected += 1;
        }
        latencies.push(best);
    }
    latencies.sort_by(|x, y| x.partial_cmp(y).expect("INF sorts fine"));
    let q = |p: f64| latencies[((p * samples as f64) as usize).min(samples - 1)];
    Some(WeatherOutcome {
        clear_ms: members
            .iter()
            .map(|m| m.clear_ms)
            .fold(f64::INFINITY, f64::min),
        p50_ms: q(0.50),
        p95_ms: q(0.95),
        p99_ms: q(0.99),
        availability: connected as f64 / samples as f64,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hft_core::corridor::{CME, EQUINIX_NY4};
    use hft_core::reconstruct;
    use hft_corridor::{chicago_nj, generate};
    use hft_time::Date;
    use hft_uls::UlsPortal;

    fn net(name: &str) -> Network {
        let eco = generate(&chicago_nj(), 2020);
        let lics = eco.db.licensee_search(name);
        reconstruct(
            &lics,
            name,
            Date::new(2020, 4, 1).unwrap(),
            &Default::default(),
        )
    }

    #[test]
    fn weather_crossover_wh_beats_nln_in_tails() {
        let nln = net("New Line Networks");
        let wh = net("Webline Holdings");
        let sampler = WeatherSampler::stormy_season();
        let o_nln = conditional_latency(&nln, &CME, &EQUINIX_NY4, &sampler, 3000, 99).unwrap();
        let o_wh = conditional_latency(&wh, &CME, &EQUINIX_NY4, &sampler, 3000, 99).unwrap();
        // Fair weather: NLN wins (Table 1).
        assert!(o_nln.clear_ms < o_wh.clear_ms);
        assert!(o_nln.p50_ms < o_wh.p50_ms);
        // Tails: WH's short 6 GHz links and high APA keep it up and fast
        // while NLN's long 11 GHz links fail — the §5 crossover.
        assert!(
            o_wh.availability > o_nln.availability,
            "WH availability {} vs NLN {}",
            o_wh.availability,
            o_nln.availability
        );
        assert!(
            o_wh.p99_ms < o_nln.p99_ms,
            "WH p99 {} must beat NLN p99 {}",
            o_wh.p99_ms,
            o_nln.p99_ms
        );
    }

    #[test]
    fn portfolio_combines_the_best_of_both() {
        // §5: "the most competitive trading firms may even use a
        // combination of both services". The NLN+WH portfolio must match
        // NLN's fair-weather latency AND WH's availability.
        let nln = net("New Line Networks");
        let wh = net("Webline Holdings");
        let sampler = WeatherSampler::stormy_season();
        let o_nln = conditional_latency(&nln, &CME, &EQUINIX_NY4, &sampler, 3000, 99).unwrap();
        let o_wh = conditional_latency(&wh, &CME, &EQUINIX_NY4, &sampler, 3000, 99).unwrap();
        let combo =
            portfolio_latency(&[&nln, &wh], &CME, &EQUINIX_NY4, &sampler, 3000, 99).unwrap();
        assert!(
            (combo.p50_ms - o_nln.p50_ms).abs() < 1e-9,
            "fair weather: ride NLN"
        );
        assert!(
            combo.availability >= o_wh.availability,
            "tails: covered by WH"
        );
        assert!(
            combo.p99_ms <= o_wh.p99_ms + 1e-9,
            "p99 at least as good as WH alone"
        );
        assert!(combo.p99_ms.is_finite());
    }

    #[test]
    fn portfolio_of_one_equals_single_network() {
        let nln = net("New Line Networks");
        let s = WeatherSampler::default();
        let single = conditional_latency(&nln, &CME, &EQUINIX_NY4, &s, 400, 5).unwrap();
        let combo = portfolio_latency(&[&nln], &CME, &EQUINIX_NY4, &s, 400, 5).unwrap();
        assert_eq!(single, combo);
        assert!(portfolio_latency(&[], &CME, &EQUINIX_NY4, &s, 10, 5).is_none());
    }

    #[test]
    fn outcome_is_deterministic_in_seed() {
        let nln = net("New Line Networks");
        let s = WeatherSampler::default();
        let a = conditional_latency(&nln, &CME, &EQUINIX_NY4, &s, 500, 7).unwrap();
        let b = conditional_latency(&nln, &CME, &EQUINIX_NY4, &s, 500, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn clear_weather_sampler_changes_nothing() {
        let nln = net("New Line Networks");
        let dry = WeatherSampler {
            rain_probability: 0.0,
            mean_peak_mm_h: 10.0,
            max_half_width: 0.05,
        };
        let o = conditional_latency(&nln, &CME, &EQUINIX_NY4, &dry, 200, 1).unwrap();
        assert_eq!(o.availability, 1.0);
        assert_eq!(o.p99_ms, o.clear_ms);
    }
}
