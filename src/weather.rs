//! The §5 reliability argument as a runnable experiment.
//!
//! The implementation lives in [`hft_core::weather`] so that other
//! consumers (notably the `hft-serve` query service) can run the weather
//! Monte Carlo without depending on this top-level crate; everything is
//! re-exported here under the historical `hftnetview::weather` path.
//! The integration tests stay in this crate because they exercise the
//! full generated ecosystem (`hft_corridor`), which `hft-core` cannot
//! depend on.

pub use hft_core::weather::*;

#[cfg(test)]
mod tests {
    use super::*;
    use hft_core::corridor::{CME, EQUINIX_NY4};
    use hft_core::{reconstruct, Network};
    use hft_corridor::{chicago_nj, generate};
    use hft_radio::WeatherSampler;
    use hft_time::Date;
    use hft_uls::UlsPortal;

    fn net(name: &str) -> Network {
        let eco = generate(&chicago_nj(), 2020);
        let lics = eco.db.licensee_search(name);
        reconstruct(
            &lics,
            name,
            Date::new(2020, 4, 1).unwrap(),
            &Default::default(),
        )
    }

    #[test]
    fn weather_crossover_wh_beats_nln_in_tails() {
        let nln = net("New Line Networks");
        let wh = net("Webline Holdings");
        let sampler = WeatherSampler::stormy_season();
        let o_nln = conditional_latency(&nln, &CME, &EQUINIX_NY4, &sampler, 3000, 99).unwrap();
        let o_wh = conditional_latency(&wh, &CME, &EQUINIX_NY4, &sampler, 3000, 99).unwrap();
        // Fair weather: NLN wins (Table 1).
        assert!(o_nln.clear_ms < o_wh.clear_ms);
        assert!(o_nln.p50_ms < o_wh.p50_ms);
        // Tails: WH's short 6 GHz links and high APA keep it up and fast
        // while NLN's long 11 GHz links fail — the §5 crossover.
        assert!(
            o_wh.availability > o_nln.availability,
            "WH availability {} vs NLN {}",
            o_wh.availability,
            o_nln.availability
        );
        assert!(
            o_wh.p99_ms < o_nln.p99_ms,
            "WH p99 {} must beat NLN p99 {}",
            o_wh.p99_ms,
            o_nln.p99_ms
        );
    }

    #[test]
    fn portfolio_combines_the_best_of_both() {
        // §5: "the most competitive trading firms may even use a
        // combination of both services". The NLN+WH portfolio must match
        // NLN's fair-weather latency AND WH's availability.
        let nln = net("New Line Networks");
        let wh = net("Webline Holdings");
        let sampler = WeatherSampler::stormy_season();
        let o_nln = conditional_latency(&nln, &CME, &EQUINIX_NY4, &sampler, 3000, 99).unwrap();
        let o_wh = conditional_latency(&wh, &CME, &EQUINIX_NY4, &sampler, 3000, 99).unwrap();
        let combo =
            portfolio_latency(&[&nln, &wh], &CME, &EQUINIX_NY4, &sampler, 3000, 99).unwrap();
        assert!(
            (combo.p50_ms - o_nln.p50_ms).abs() < 1e-9,
            "fair weather: ride NLN"
        );
        assert!(
            combo.availability >= o_wh.availability,
            "tails: covered by WH"
        );
        assert!(
            combo.p99_ms <= o_wh.p99_ms + 1e-9,
            "p99 at least as good as WH alone"
        );
        assert!(combo.p99_ms.is_finite());
    }

    #[test]
    fn portfolio_of_one_equals_single_network() {
        let nln = net("New Line Networks");
        let s = WeatherSampler::default();
        let single = conditional_latency(&nln, &CME, &EQUINIX_NY4, &s, 400, 5).unwrap();
        let combo = portfolio_latency(&[&nln], &CME, &EQUINIX_NY4, &s, 400, 5).unwrap();
        assert_eq!(single, combo);
        assert!(portfolio_latency(&[], &CME, &EQUINIX_NY4, &s, 10, 5).is_none());
    }

    #[test]
    fn outcome_is_deterministic_in_seed() {
        let nln = net("New Line Networks");
        let s = WeatherSampler::default();
        let a = conditional_latency(&nln, &CME, &EQUINIX_NY4, &s, 500, 7).unwrap();
        let b = conditional_latency(&nln, &CME, &EQUINIX_NY4, &s, 500, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        // The seeded entry point must be a pure function of its inputs
        // (explicit RNG threading, no ambient entropy): two runs agree
        // on every f64 *bit*, so downstream wire encodings of cached
        // race/weather answers are byte-stable across recomputation.
        let nln = net("New Line Networks");
        let s = WeatherSampler::stormy_season();
        let a = conditional_latency(&nln, &CME, &EQUINIX_NY4, &s, 800, 42).unwrap();
        let b = conditional_latency(&nln, &CME, &EQUINIX_NY4, &s, 800, 42).unwrap();
        for (x, y) in [
            (a.clear_ms, b.clear_ms),
            (a.p50_ms, b.p50_ms),
            (a.p95_ms, b.p95_ms),
            (a.p99_ms, b.p99_ms),
            (a.availability, b.availability),
        ] {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // And the explicit-RNG variant with an equal stream matches the
        // seeded wrapper bit-for-bit.
        use hft_core::route::RoutingGraph;
        use rand::SeedableRng;
        let rg = RoutingGraph::build(&nln, &CME, &EQUINIX_NY4);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let c = conditional_latency_rng(&rg, &nln, &CME, &EQUINIX_NY4, &s, 800, &mut rng).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn clear_weather_sampler_changes_nothing() {
        let nln = net("New Line Networks");
        let dry = WeatherSampler {
            rain_probability: 0.0,
            mean_peak_mm_h: 10.0,
            max_half_width: 0.05,
        };
        let o = conditional_latency(&nln, &CME, &EQUINIX_NY4, &dry, 200, 1).unwrap();
        assert_eq!(o.availability, 1.0);
        assert_eq!(o.p99_ms, o.clear_ms);
    }
}
